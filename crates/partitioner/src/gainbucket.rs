//! Gain buckets: the O(1)-update priority structure of Fiduccia–Mattheyses.
//!
//! Vertices are kept in doubly-linked lists, one list per integer gain
//! value, over a flat bucket array offset so gains may be negative. All
//! links are intrusive `i64` arrays indexed by vertex id — no allocation
//! after construction, following the flat-structure idiom of the
//! performance guide.

use crate::Idx;

const NIL: i64 = -1;

/// A bucket-array priority structure mapping vertices to integer gains.
///
/// Gains are clamped to `[-range, +range]`; clamping only affects move
/// *ordering* (the realised gain is always recomputed by the partition
/// state), so a clamped structure stays correct, just marginally less
/// greedy on pathological weight distributions.
#[derive(Debug, Clone)]
pub struct GainBuckets {
    range: i64,
    /// `heads[g + range]` is the first vertex with (clamped) gain `g`.
    heads: Vec<i64>,
    prev: Vec<i64>,
    next: Vec<i64>,
    gain: Vec<i64>,
    in_bucket: Vec<bool>,
    /// Upper bound on the highest non-empty bucket index; decays lazily.
    max_index: i64,
    len: usize,
}

impl GainBuckets {
    /// Creates an empty structure for `num_vertices` vertices with gains in
    /// `[-range, +range]`.
    pub fn new(num_vertices: usize, range: i64) -> Self {
        let range = range.max(0);
        GainBuckets {
            range,
            heads: vec![NIL; (2 * range + 1) as usize],
            prev: vec![NIL; num_vertices],
            next: vec![NIL; num_vertices],
            gain: vec![0; num_vertices],
            in_bucket: vec![false; num_vertices],
            max_index: -1,
            len: 0,
        }
    }

    #[inline]
    fn clamp(&self, g: i64) -> i64 {
        g.clamp(-self.range, self.range)
    }

    /// Number of vertices currently stored.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if no vertices are stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// `true` if `v` is currently stored.
    #[inline]
    pub fn contains(&self, v: Idx) -> bool {
        self.in_bucket[v as usize]
    }

    /// The stored (clamped) gain of `v`; meaningful only if stored.
    #[inline]
    pub fn gain_of(&self, v: Idx) -> i64 {
        self.gain[v as usize]
    }

    /// Inserts `v` with the given gain. Panics in debug mode if present.
    pub fn insert(&mut self, v: Idx, gain: i64) {
        debug_assert!(!self.in_bucket[v as usize], "vertex {v} already stored");
        let g = self.clamp(gain);
        let idx = (g + self.range) as usize;
        let vi = v as i64;
        let head = self.heads[idx];
        self.next[v as usize] = head;
        self.prev[v as usize] = NIL;
        if head != NIL {
            self.prev[head as usize] = vi;
        }
        self.heads[idx] = vi;
        self.gain[v as usize] = g;
        self.in_bucket[v as usize] = true;
        self.max_index = self.max_index.max(idx as i64);
        self.len += 1;
    }

    /// Removes `v`. Panics in debug mode if absent.
    pub fn remove(&mut self, v: Idx) {
        debug_assert!(self.in_bucket[v as usize], "vertex {v} not stored");
        let p = self.prev[v as usize];
        let n = self.next[v as usize];
        if p != NIL {
            self.next[p as usize] = n;
        } else {
            let idx = (self.gain[v as usize] + self.range) as usize;
            self.heads[idx] = n;
        }
        if n != NIL {
            self.prev[n as usize] = p;
        }
        self.in_bucket[v as usize] = false;
        self.len -= 1;
    }

    /// Adds `delta` to the gain of a stored vertex, relinking it.
    pub fn adjust(&mut self, v: Idx, delta: i64) {
        let g = self.gain[v as usize] + delta;
        self.remove(v);
        self.insert(v, g);
    }

    /// Scans vertices in non-increasing gain order, returning the first one
    /// accepted by `feasible`, inspecting at most `cap` candidates.
    /// The returned vertex is *not* removed.
    pub fn best_where(&mut self, mut feasible: impl FnMut(Idx) -> bool, cap: usize) -> Option<Idx> {
        let mut inspected = 0usize;
        // Decay the max pointer past empty buckets first.
        while self.max_index >= 0 && self.heads[self.max_index as usize] == NIL {
            self.max_index -= 1;
        }
        let mut idx = self.max_index;
        while idx >= 0 && inspected < cap {
            let mut node = self.heads[idx as usize];
            while node != NIL && inspected < cap {
                inspected += 1;
                let v = node as Idx;
                if feasible(v) {
                    return Some(v);
                }
                node = self.next[node as usize];
            }
            idx -= 1;
        }
        None
    }

    /// The current maximum stored gain, if any vertex is stored.
    pub fn max_gain(&mut self) -> Option<i64> {
        while self.max_index >= 0 && self.heads[self.max_index as usize] == NIL {
            self.max_index -= 1;
        }
        if self.max_index >= 0 {
            Some(self.max_index - self.range)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_best() {
        let mut b = GainBuckets::new(5, 10);
        b.insert(0, 3);
        b.insert(1, -2);
        b.insert(2, 7);
        assert_eq!(b.len(), 3);
        assert_eq!(b.max_gain(), Some(7));
        assert_eq!(b.best_where(|_| true, 100), Some(2));
    }

    #[test]
    fn best_respects_feasibility() {
        let mut b = GainBuckets::new(5, 10);
        b.insert(0, 5);
        b.insert(1, 5);
        b.insert(2, 1);
        let skip0 = b.best_where(|v| v != 0, 100).unwrap();
        assert_ne!(skip0, 0);
        let only2 = b.best_where(|v| v == 2, 100);
        assert_eq!(only2, Some(2));
    }

    #[test]
    fn remove_relinks() {
        let mut b = GainBuckets::new(4, 10);
        b.insert(0, 2);
        b.insert(1, 2);
        b.insert(2, 2);
        b.remove(1); // middle of the list
        assert!(!b.contains(1));
        assert_eq!(b.len(), 2);
        // Both remaining vertices still reachable.
        let mut seen = vec![];
        while let Some(v) = b.best_where(|_| true, 100) {
            seen.push(v);
            b.remove(v);
        }
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 2]);
    }

    #[test]
    fn adjust_moves_between_buckets() {
        let mut b = GainBuckets::new(3, 10);
        b.insert(0, 0);
        b.insert(1, 1);
        b.adjust(0, 5);
        assert_eq!(b.best_where(|_| true, 100), Some(0));
        b.adjust(0, -9);
        assert_eq!(b.best_where(|_| true, 100), Some(1));
        assert_eq!(b.gain_of(0), -4);
    }

    #[test]
    fn gains_are_clamped_not_lost() {
        let mut b = GainBuckets::new(2, 3);
        b.insert(0, 100);
        b.insert(1, -100);
        assert_eq!(b.gain_of(0), 3);
        assert_eq!(b.gain_of(1), -3);
        assert_eq!(b.best_where(|_| true, 100), Some(0));
        b.adjust(0, -100);
        assert_eq!(b.gain_of(0), -3);
    }

    #[test]
    fn cap_limits_inspection() {
        let mut b = GainBuckets::new(10, 5);
        for v in 0..10 {
            b.insert(v, 5);
        }
        // With cap 3 and a predicate rejecting everything, no candidate.
        assert_eq!(b.best_where(|_| false, 3), None);
    }

    #[test]
    fn max_gain_decays_after_removals() {
        let mut b = GainBuckets::new(3, 10);
        b.insert(0, 8);
        b.insert(1, 2);
        b.remove(0);
        assert_eq!(b.max_gain(), Some(2));
        b.remove(1);
        assert_eq!(b.max_gain(), None);
        assert!(b.is_empty());
    }
}

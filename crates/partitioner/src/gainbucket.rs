//! Gain buckets: the O(1)-update priority structure of Fiduccia–Mattheyses.
//!
//! Vertices are kept in doubly-linked lists, one list per integer gain
//! value. All links are intrusive `i64` arrays indexed by vertex id — no
//! allocation after construction, following the flat-structure idiom of
//! the performance guide.
//!
//! Bucket heads have two storages behind one interface: a flat array
//! indexed by `gain + range` when the gain range is small (the common
//! case — O(1) head lookup), and a `BTreeMap` keyed by gain when it is
//! not, so a single heavy net cannot force an allocation proportional to
//! the total net weight. Both storages keep the same discipline —
//! insert at the head of a bucket (LIFO), scan buckets in descending
//! gain order — so the chosen storage never changes which vertex a scan
//! returns.

use crate::Idx;
use std::collections::BTreeMap;

const NIL: i64 = -1;

/// Largest gain range stored as a flat bucket array (2·range+1 slots);
/// beyond this the sparse map is used instead.
const DENSE_RANGE_MAX: i64 = 1 << 16;

/// Bucket-head storage: dense array for small ranges, sorted map for
/// pathological ones. The sparse map holds only non-empty buckets, so
/// its reverse iteration visits exactly the buckets the dense scan
/// visits, in the same order.
#[derive(Debug, Clone)]
enum Store {
    Dense {
        /// `heads[g + range]` is the first vertex with (clamped) gain `g`.
        heads: Vec<i64>,
        /// Upper bound on the highest non-empty bucket index; decays lazily.
        max_index: i64,
    },
    Sparse {
        /// `heads[g]` is the first vertex with (clamped) gain `g`;
        /// keys exist only while their bucket is non-empty.
        heads: BTreeMap<i64, i64>,
    },
}

/// A bucket-array priority structure mapping vertices to integer gains.
///
/// Gains are clamped to `[-range, +range]`; clamping only affects move
/// *ordering* (the realised gain is always recomputed by the partition
/// state), so a clamped structure stays correct, just marginally less
/// greedy on pathological weight distributions.
#[derive(Debug, Clone)]
pub struct GainBuckets {
    range: i64,
    store: Store,
    prev: Vec<i64>,
    next: Vec<i64>,
    gain: Vec<i64>,
    in_bucket: Vec<bool>,
    len: usize,
}

fn store_for(range: i64) -> Store {
    if range <= DENSE_RANGE_MAX {
        Store::Dense {
            heads: vec![NIL; (2 * range + 1) as usize],
            max_index: -1,
        }
    } else {
        Store::Sparse {
            heads: BTreeMap::new(),
        }
    }
}

impl GainBuckets {
    /// Creates an empty structure for `num_vertices` vertices with gains in
    /// `[-range, +range]`.
    pub fn new(num_vertices: usize, range: i64) -> Self {
        let range = range.max(0);
        GainBuckets {
            range,
            store: store_for(range),
            prev: vec![NIL; num_vertices],
            next: vec![NIL; num_vertices],
            gain: vec![0; num_vertices],
            in_bucket: vec![false; num_vertices],
            len: 0,
        }
    }

    /// Empties the structure and re-sizes it for `num_vertices` vertices
    /// with gains in `[-range, +range]`, reusing existing allocations —
    /// the scratch-buffer path for repeated FM passes and levels.
    pub fn reset(&mut self, num_vertices: usize, range: i64) {
        let range = range.max(0);
        self.range = range;
        match (&mut self.store, range <= DENSE_RANGE_MAX) {
            (
                Store::Dense {
                    heads, max_index, ..
                },
                true,
            ) => {
                heads.clear();
                heads.resize((2 * range + 1) as usize, NIL);
                *max_index = -1;
            }
            (Store::Sparse { heads }, false) => heads.clear(),
            (store, _) => *store = store_for(range),
        }
        self.prev.clear();
        self.prev.resize(num_vertices, NIL);
        self.next.clear();
        self.next.resize(num_vertices, NIL);
        self.gain.clear();
        self.gain.resize(num_vertices, 0);
        self.in_bucket.clear();
        self.in_bucket.resize(num_vertices, false);
        self.len = 0;
    }

    #[inline]
    fn clamp(&self, g: i64) -> i64 {
        g.clamp(-self.range, self.range)
    }

    /// Number of vertices currently stored.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if no vertices are stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// `true` if `v` is currently stored.
    #[inline]
    pub fn contains(&self, v: Idx) -> bool {
        self.in_bucket[v as usize]
    }

    /// The stored (clamped) gain of `v`; meaningful only if stored.
    #[inline]
    pub fn gain_of(&self, v: Idx) -> i64 {
        self.gain[v as usize]
    }

    /// Inserts `v` with the given gain. Panics in debug mode if present.
    pub fn insert(&mut self, v: Idx, gain: i64) {
        debug_assert!(!self.in_bucket[v as usize], "vertex {v} already stored");
        let g = self.clamp(gain);
        let vi = v as i64;
        let head = match &mut self.store {
            Store::Dense { heads, max_index } => {
                let idx = (g + self.range) as usize;
                let head = heads[idx];
                heads[idx] = vi;
                *max_index = (*max_index).max(idx as i64);
                head
            }
            Store::Sparse { heads } => {
                let slot = heads.entry(g).or_insert(NIL);
                std::mem::replace(slot, vi)
            }
        };
        self.next[v as usize] = head;
        self.prev[v as usize] = NIL;
        if head != NIL {
            self.prev[head as usize] = vi;
        }
        self.gain[v as usize] = g;
        self.in_bucket[v as usize] = true;
        self.len += 1;
    }

    /// Removes `v`. Panics in debug mode if absent.
    pub fn remove(&mut self, v: Idx) {
        debug_assert!(self.in_bucket[v as usize], "vertex {v} not stored");
        let p = self.prev[v as usize];
        let n = self.next[v as usize];
        if p != NIL {
            self.next[p as usize] = n;
        } else {
            let g = self.gain[v as usize];
            match &mut self.store {
                Store::Dense { heads, .. } => heads[(g + self.range) as usize] = n,
                Store::Sparse { heads } => {
                    if n != NIL {
                        heads.insert(g, n);
                    } else {
                        heads.remove(&g);
                    }
                }
            }
        }
        if n != NIL {
            self.prev[n as usize] = p;
        }
        self.in_bucket[v as usize] = false;
        self.len -= 1;
    }

    /// Adds `delta` to the gain of a stored vertex, relinking it.
    pub fn adjust(&mut self, v: Idx, delta: i64) {
        let g = self.gain[v as usize] + delta;
        self.remove(v);
        self.insert(v, g);
    }

    /// Scans vertices in non-increasing gain order, returning the first one
    /// accepted by `feasible`, inspecting at most `cap` candidates.
    /// The returned vertex is *not* removed.
    pub fn best_where(&mut self, mut feasible: impl FnMut(Idx) -> bool, cap: usize) -> Option<Idx> {
        let mut inspected = 0usize;
        let next = &self.next;
        match &mut self.store {
            Store::Dense { heads, max_index } => {
                // Decay the max pointer past empty buckets first.
                while *max_index >= 0 && heads[*max_index as usize] == NIL {
                    *max_index -= 1;
                }
                let mut idx = *max_index;
                while idx >= 0 && inspected < cap {
                    let mut node = heads[idx as usize];
                    while node != NIL && inspected < cap {
                        inspected += 1;
                        let v = node as Idx;
                        if feasible(v) {
                            return Some(v);
                        }
                        node = next[node as usize];
                    }
                    idx -= 1;
                }
            }
            Store::Sparse { heads } => {
                // Keys exist only for non-empty buckets, so this reverse
                // walk is the dense scan minus the empty-slot skipping.
                for (_, &head) in heads.iter().rev() {
                    let mut node = head;
                    while node != NIL && inspected < cap {
                        inspected += 1;
                        let v = node as Idx;
                        if feasible(v) {
                            return Some(v);
                        }
                        node = next[node as usize];
                    }
                    if inspected >= cap {
                        break;
                    }
                }
            }
        }
        None
    }

    /// The current maximum stored gain, if any vertex is stored.
    pub fn max_gain(&mut self) -> Option<i64> {
        match &mut self.store {
            Store::Dense { heads, max_index } => {
                while *max_index >= 0 && heads[*max_index as usize] == NIL {
                    *max_index -= 1;
                }
                if *max_index >= 0 {
                    Some(*max_index - self.range)
                } else {
                    None
                }
            }
            Store::Sparse { heads } => heads.keys().next_back().copied(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_best() {
        let mut b = GainBuckets::new(5, 10);
        b.insert(0, 3);
        b.insert(1, -2);
        b.insert(2, 7);
        assert_eq!(b.len(), 3);
        assert_eq!(b.max_gain(), Some(7));
        assert_eq!(b.best_where(|_| true, 100), Some(2));
    }

    #[test]
    fn best_respects_feasibility() {
        let mut b = GainBuckets::new(5, 10);
        b.insert(0, 5);
        b.insert(1, 5);
        b.insert(2, 1);
        let skip0 = b.best_where(|v| v != 0, 100).unwrap();
        assert_ne!(skip0, 0);
        let only2 = b.best_where(|v| v == 2, 100);
        assert_eq!(only2, Some(2));
    }

    #[test]
    fn remove_relinks() {
        let mut b = GainBuckets::new(4, 10);
        b.insert(0, 2);
        b.insert(1, 2);
        b.insert(2, 2);
        b.remove(1); // middle of the list
        assert!(!b.contains(1));
        assert_eq!(b.len(), 2);
        // Both remaining vertices still reachable.
        let mut seen = vec![];
        while let Some(v) = b.best_where(|_| true, 100) {
            seen.push(v);
            b.remove(v);
        }
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 2]);
    }

    #[test]
    fn adjust_moves_between_buckets() {
        let mut b = GainBuckets::new(3, 10);
        b.insert(0, 0);
        b.insert(1, 1);
        b.adjust(0, 5);
        assert_eq!(b.best_where(|_| true, 100), Some(0));
        b.adjust(0, -9);
        assert_eq!(b.best_where(|_| true, 100), Some(1));
        assert_eq!(b.gain_of(0), -4);
    }

    #[test]
    fn gains_are_clamped_not_lost() {
        let mut b = GainBuckets::new(2, 3);
        b.insert(0, 100);
        b.insert(1, -100);
        assert_eq!(b.gain_of(0), 3);
        assert_eq!(b.gain_of(1), -3);
        assert_eq!(b.best_where(|_| true, 100), Some(0));
        b.adjust(0, -100);
        assert_eq!(b.gain_of(0), -3);
    }

    #[test]
    fn cap_limits_inspection() {
        let mut b = GainBuckets::new(10, 5);
        for v in 0..10 {
            b.insert(v, 5);
        }
        // With cap 3 and a predicate rejecting everything, no candidate.
        assert_eq!(b.best_where(|_| false, 3), None);
    }

    #[test]
    fn max_gain_decays_after_removals() {
        let mut b = GainBuckets::new(3, 10);
        b.insert(0, 8);
        b.insert(1, 2);
        b.remove(0);
        assert_eq!(b.max_gain(), Some(2));
        b.remove(1);
        assert_eq!(b.max_gain(), None);
        assert!(b.is_empty());
    }

    #[test]
    fn huge_range_does_not_allocate_proportionally() {
        // A single heavy net used to force a 2·range+1 bucket array; the
        // sparse store makes this O(live gains) instead. range ≈ 2^40
        // would need a 16 TiB head array if still dense.
        let mut b = GainBuckets::new(4, 1 << 40);
        b.insert(0, 1 << 39);
        b.insert(1, -(1 << 39));
        b.insert(2, 0);
        assert_eq!(b.max_gain(), Some(1 << 39));
        assert_eq!(b.best_where(|_| true, 100), Some(0));
        b.adjust(0, -(1 << 40));
        assert_eq!(b.best_where(|_| true, 100), Some(2));
        b.remove(2);
        // 0 re-entered the −2^39 bucket after 1, so LIFO puts it first.
        assert_eq!(b.best_where(|_| true, 100), Some(0));
    }

    #[test]
    fn reset_reuses_and_clears() {
        let mut b = GainBuckets::new(8, 12);
        for v in 0..8 {
            b.insert(v, v as i64 - 4);
        }
        b.reset(5, 6);
        assert!(b.is_empty());
        assert_eq!(b.max_gain(), None);
        for v in 0..5 {
            assert!(!b.contains(v));
        }
        b.insert(3, 2);
        b.insert(4, -2);
        assert_eq!(b.best_where(|_| true, 100), Some(3));
        // Crossing the dense/sparse threshold re-targets the store.
        b.reset(3, 1 << 30);
        assert!(b.is_empty());
        b.insert(0, 1 << 29);
        assert_eq!(b.max_gain(), Some(1 << 29));
        b.reset(3, 4);
        assert!(b.is_empty());
        b.insert(1, 3);
        assert_eq!(b.best_where(|_| true, 100), Some(1));
    }

    /// The two storages must pick identical vertices under identical
    /// operation sequences — the scan order is part of the determinism
    /// contract, not an implementation detail.
    #[test]
    fn dense_and_sparse_scan_orders_agree() {
        // range 8 → dense; range DENSE_RANGE_MAX+1 → sparse. Same inserts,
        // same gains (all within ±8 so clamping is identical).
        let mut dense = GainBuckets::new(16, 8);
        let mut sparse = GainBuckets::new(16, DENSE_RANGE_MAX + 1);
        let gains = [3, -1, 3, 0, 8, -8, 3, 5, 5, 0, -3, 8, 1, 2, -2, 4];
        for (v, &g) in gains.iter().enumerate() {
            dense.insert(v as Idx, g);
            sparse.insert(v as Idx, g);
        }
        // Interleave removals and adjustments, then drain both fully.
        for v in [4, 9, 2] {
            dense.remove(v);
            sparse.remove(v);
        }
        for (v, d) in [(0, -5), (7, 2), (10, 6)] {
            dense.adjust(v, d);
            sparse.adjust(v, d);
        }
        loop {
            assert_eq!(dense.max_gain(), sparse.max_gain());
            let a = dense.best_where(|_| true, 100);
            let b = sparse.best_where(|_| true, 100);
            assert_eq!(a, b);
            let Some(v) = a else { break };
            dense.remove(v);
            sparse.remove(v);
        }
    }
}

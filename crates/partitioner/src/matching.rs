//! Vertex grouping for coarsening: heavy-connectivity matching and
//! agglomerative clustering.
//!
//! Both schemes produce a *clustering*: a map `vertex → cluster id` with
//! cluster ids contiguous in `0..num_clusters`. Pairwise matching is the
//! special case where clusters have at most two members.

use crate::config::{CoarseningScheme, PartitionerConfig};
use crate::Idx;
use mg_hypergraph::Hypergraph;
use rand::seq::SliceRandom;
use rand::Rng;

/// A clustering of the vertices of a hypergraph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Clustering {
    /// `cluster[v]` is the cluster id of vertex `v`, in `0..num_clusters`.
    pub cluster: Vec<Idx>,
    /// Number of clusters.
    pub num_clusters: Idx,
}

impl Clustering {
    /// Checks contiguity of cluster ids; for tests.
    pub fn validate(&self) -> Result<(), String> {
        let mut seen = vec![false; self.num_clusters as usize];
        for &c in &self.cluster {
            if c >= self.num_clusters {
                return Err(format!("cluster id {c} out of range"));
            }
            seen[c as usize] = true;
        }
        if !seen.iter().all(|&s| s) {
            return Err("cluster ids are not contiguous".into());
        }
        Ok(())
    }
}

/// Scratch buffers for connectivity scoring, reused across vertices.
struct Scorer {
    score: Vec<u64>,
    touched: Vec<Idx>,
}

impl Scorer {
    fn new(n: usize) -> Self {
        Scorer {
            score: vec![0; n],
            touched: Vec::new(),
        }
    }

    #[inline]
    fn bump(&mut self, target: Idx, amount: u64) {
        if self.score[target as usize] == 0 {
            self.touched.push(target);
        }
        self.score[target as usize] += amount;
    }

    fn reset(&mut self) {
        for &t in &self.touched {
            self.score[t as usize] = 0;
        }
        self.touched.clear();
    }
}

/// Groups vertices for one coarsening level according to the configured
/// scheme. Never produces a cluster heavier than
/// `config.max_cluster_weight_fraction · total_weight` (subject to single
/// vertices already exceeding it, which stay singletons).
pub fn cluster_vertices<R: Rng>(
    h: &Hypergraph,
    config: &PartitionerConfig,
    rng: &mut R,
) -> Clustering {
    match config.coarsening {
        CoarseningScheme::HeavyConnectivityMatching => heavy_matching(h, config, rng),
        CoarseningScheme::Agglomerative => agglomerative(h, config, rng),
        CoarseningScheme::RandomMatching => random_matching(h, rng),
    }
}

/// Greedy pairwise matching: visit vertices in random order; match each
/// unmatched vertex with the unmatched neighbour sharing the largest total
/// net weight (net sizes above `max_scored_net_size` skipped; each net's
/// contribution is scaled by `1/(|n|−1)` so huge nets do not drown local
/// structure).
fn heavy_matching<R: Rng>(h: &Hypergraph, config: &PartitionerConfig, rng: &mut R) -> Clustering {
    let n = h.num_vertices() as usize;
    let max_cluster_weight = cluster_weight_cap(h, config);
    let mut order: Vec<Idx> = (0..n as Idx).collect();
    order.shuffle(rng);
    let mut mate = vec![Idx::MAX; n];
    let mut scorer = Scorer::new(n);

    for &v in &order {
        if mate[v as usize] != Idx::MAX {
            continue;
        }
        let wv = h.vertex_weight(v);
        for &net in h.vertex_nets(v) {
            let size = h.net_size(net);
            if size < 2 || size > config.max_scored_net_size {
                continue;
            }
            // Scale so a 2-pin net counts as much as its full weight.
            let contribution = (h.net_weight(net) * 1024) / (size as u64 - 1);
            for &u in h.net_pins(net) {
                if u != v && mate[u as usize] == Idx::MAX {
                    scorer.bump(u, contribution.max(1));
                }
            }
        }
        let mut best: Option<(u64, Idx)> = None;
        for &u in &scorer.touched {
            if h.vertex_weight(u) + wv > max_cluster_weight {
                continue;
            }
            let s = scorer.score[u as usize];
            if best.is_none_or(|(bs, bu)| s > bs || (s == bs && u < bu)) {
                best = Some((s, u));
            }
        }
        if let Some((_, u)) = best {
            mate[v as usize] = u;
            mate[u as usize] = v;
        }
        scorer.reset();
    }

    // Compact mates into contiguous cluster ids.
    let mut cluster = vec![Idx::MAX; n];
    let mut next = 0 as Idx;
    for v in 0..n {
        if cluster[v] != Idx::MAX {
            continue;
        }
        cluster[v] = next;
        let m = mate[v];
        if m != Idx::MAX {
            cluster[m as usize] = next;
        }
        next += 1;
    }
    Clustering {
        cluster,
        num_clusters: next,
    }
}

/// Agglomerative (absorption) clustering: visiting vertices in random
/// order, each unassigned vertex joins the cluster with the strongest
/// connectivity among its neighbours (matched or not), subject to the
/// cluster weight cap; otherwise it seeds a new cluster.
fn agglomerative<R: Rng>(h: &Hypergraph, config: &PartitionerConfig, rng: &mut R) -> Clustering {
    let n = h.num_vertices() as usize;
    let max_cluster_weight = cluster_weight_cap(h, config);
    let mut order: Vec<Idx> = (0..n as Idx).collect();
    order.shuffle(rng);
    let mut cluster = vec![Idx::MAX; n];
    let mut cluster_weight: Vec<u64> = Vec::new();
    let mut scorer = Scorer::new(n);

    for &v in &order {
        if cluster[v as usize] != Idx::MAX {
            continue;
        }
        let wv = h.vertex_weight(v);
        // Score *clusters* through neighbouring vertices.
        for &net in h.vertex_nets(v) {
            let size = h.net_size(net);
            if size < 2 || size > config.max_scored_net_size {
                continue;
            }
            let contribution = (h.net_weight(net) * 1024) / (size as u64 - 1);
            for &u in h.net_pins(net) {
                if u != v {
                    scorer.bump(u, contribution.max(1));
                }
            }
        }
        // Aggregate neighbour scores per target cluster (or singleton
        // neighbour), pick the best feasible.
        let mut best: Option<(u64, Idx)> = None; // (score, neighbour vertex)
        for &u in &scorer.touched {
            let target_weight = match cluster[u as usize] {
                Idx::MAX => h.vertex_weight(u),
                c => cluster_weight[c as usize],
            };
            if target_weight + wv > max_cluster_weight {
                continue;
            }
            let s = scorer.score[u as usize];
            if best.is_none_or(|(bs, bu)| s > bs || (s == bs && u < bu)) {
                best = Some((s, u));
            }
        }
        match best {
            Some((_, u)) => {
                let c = match cluster[u as usize] {
                    Idx::MAX => {
                        let c = cluster_weight.len() as Idx;
                        cluster_weight.push(h.vertex_weight(u));
                        cluster[u as usize] = c;
                        c
                    }
                    c => c,
                };
                cluster[v as usize] = c;
                cluster_weight[c as usize] += wv;
            }
            None => {
                let c = cluster_weight.len() as Idx;
                cluster_weight.push(wv);
                cluster[v as usize] = c;
            }
        }
        scorer.reset();
    }
    Clustering {
        cluster,
        num_clusters: cluster_weight.len() as Idx,
    }
}

/// Uniform random pairing along the shuffled order; ablation baseline.
fn random_matching<R: Rng>(h: &Hypergraph, rng: &mut R) -> Clustering {
    let n = h.num_vertices() as usize;
    let mut order: Vec<Idx> = (0..n as Idx).collect();
    order.shuffle(rng);
    let mut cluster = vec![Idx::MAX; n];
    let mut next = 0 as Idx;
    let mut i = 0usize;
    while i + 1 < n {
        cluster[order[i] as usize] = next;
        cluster[order[i + 1] as usize] = next;
        next += 1;
        i += 2;
    }
    if i < n {
        cluster[order[i] as usize] = next;
        next += 1;
    }
    Clustering {
        cluster,
        num_clusters: next,
    }
}

fn cluster_weight_cap(h: &Hypergraph, config: &PartitionerConfig) -> u64 {
    let total = h.total_vertex_weight();
    ((total as f64 * config.max_cluster_weight_fraction).ceil() as u64).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mg_hypergraph::HypergraphBuilder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn chain(n: usize) -> Hypergraph {
        let mut b = HypergraphBuilder::new(vec![1; n]);
        for v in 0..n - 1 {
            b.add_net(1, [v as Idx, v as Idx + 1]);
        }
        b.build()
    }

    #[test]
    fn matching_pairs_neighbours() {
        let h = chain(10);
        let cfg = PartitionerConfig::mondriaan_like();
        let mut rng = StdRng::seed_from_u64(1);
        let c = heavy_matching(&h, &cfg, &mut rng);
        c.validate().unwrap();
        assert!(c.num_clusters < 10, "no contraction happened");
        // Matched vertices must be hypergraph neighbours (chain: adjacent).
        for v in 0..10u32 {
            for u in 0..10u32 {
                if v != u && c.cluster[v as usize] == c.cluster[u as usize] {
                    assert_eq!((v as i64 - u as i64).abs(), 1, "{v} vs {u}");
                }
            }
        }
    }

    #[test]
    fn matching_clusters_have_at_most_two_members() {
        let h = chain(20);
        let cfg = PartitionerConfig::mondriaan_like();
        let mut rng = StdRng::seed_from_u64(2);
        let c = heavy_matching(&h, &cfg, &mut rng);
        let mut sizes = vec![0; c.num_clusters as usize];
        for &cl in &c.cluster {
            sizes[cl as usize] += 1;
        }
        assert!(sizes.iter().all(|&s| s <= 2));
    }

    #[test]
    fn agglomerative_reduces_more() {
        let h = chain(40);
        let mut cfg = PartitionerConfig::patoh_like();
        cfg.max_cluster_weight_fraction = 0.5;
        let mut rng = StdRng::seed_from_u64(3);
        let c = agglomerative(&h, &cfg, &mut rng);
        c.validate().unwrap();
        assert!(c.num_clusters < 25, "agglomerative barely contracted");
    }

    #[test]
    fn weight_cap_respected() {
        // Star: center heavy, leaves light; tight cap forbids big clusters.
        let mut b = HypergraphBuilder::new(vec![10, 1, 1, 1, 1]);
        for leaf in 1..5 {
            b.add_net(1, [0, leaf as Idx]);
        }
        let h = b.build();
        let mut cfg = PartitionerConfig::patoh_like();
        cfg.max_cluster_weight_fraction = 0.2; // cap ≈ 3: center can't merge
        let mut rng = StdRng::seed_from_u64(4);
        for scheme in [
            CoarseningScheme::HeavyConnectivityMatching,
            CoarseningScheme::Agglomerative,
        ] {
            cfg.coarsening = scheme;
            let c = cluster_vertices(&h, &cfg, &mut rng);
            c.validate().unwrap();
            let mut weights = vec![0u64; c.num_clusters as usize];
            for v in 0..5u32 {
                weights[c.cluster[v as usize] as usize] += h.vertex_weight(v);
            }
            assert!(
                weights.iter().all(|&w| w <= 10),
                "scheme {scheme:?} built an overweight cluster: {weights:?}"
            );
        }
    }

    #[test]
    fn random_matching_is_perfect_on_even_counts() {
        let h = chain(8);
        let mut rng = StdRng::seed_from_u64(5);
        let c = random_matching(&h, &mut rng);
        c.validate().unwrap();
        assert_eq!(c.num_clusters, 4);
    }

    #[test]
    fn isolated_vertices_stay_singletons() {
        let mut b = HypergraphBuilder::new(vec![1; 4]);
        b.add_net(1, [0, 1]);
        let h = b.build(); // vertices 2, 3 isolated
        let cfg = PartitionerConfig::mondriaan_like();
        let mut rng = StdRng::seed_from_u64(6);
        let c = heavy_matching(&h, &cfg, &mut rng);
        assert_ne!(c.cluster[2], c.cluster[3]);
        assert_ne!(c.cluster[2], c.cluster[0]);
    }
}

//! The multilevel driver: coarsen → initial partition → uncoarsen + refine,
//! with optional restricted V-cycles.

use crate::coarsen::{contract, project_sides};
use crate::config::PartitionerConfig;
use crate::fm::{fm_refine_with_scratch, FmLimits, FmScratch};
use crate::initial::initial_partition;
use crate::matching::{cluster_vertices, Clustering};
use crate::Idx;
use mg_hypergraph::{Hypergraph, VertexBipartition};
use rand::Rng;

/// Balance specification for one bisection: target weights per side plus
/// the allowed slack ε.
#[derive(Debug, Clone, Copy)]
pub struct BisectionTargets {
    /// Desired vertex weight per side; usually `⌈W/2⌉, ⌊W/2⌋`, but uneven
    /// for odd part counts in recursive bisection.
    pub target: [u64; 2],
    /// Allowed relative slack on each side (eqn (1) at this level).
    pub epsilon: f64,
}

impl BisectionTargets {
    /// Even split of a total weight.
    pub fn even(total_weight: u64, epsilon: f64) -> Self {
        BisectionTargets {
            target: [total_weight.div_ceil(2), total_weight / 2],
            epsilon,
        }
    }

    /// Hard budgets per side: `max(target, ⌊(1+ε)·target⌋)`. The `max`
    /// guarantees the even split is always feasible, mirroring
    /// `mg_sparse::partition::part_budget`.
    pub fn budgets(&self) -> [u64; 2] {
        let b = |t: u64| (((1.0 + self.epsilon) * t as f64).floor() as u64).max(t);
        [b(self.target[0]), b(self.target[1])]
    }
}

/// The result of a multilevel bisection.
#[derive(Debug, Clone)]
pub struct BisectionOutcome {
    /// Side (0/1) per vertex of the input hypergraph.
    pub sides: Vec<u8>,
    /// Cut weight of the bipartition (= communication volume for matrix
    /// models).
    pub cut: u64,
    /// Final vertex weight per side.
    pub part_weights: [u64; 2],
}

/// Bipartitions a hypergraph with the full multilevel pipeline.
pub fn bipartition_hypergraph<R: Rng>(
    h: &Hypergraph,
    targets: &BisectionTargets,
    config: &PartitionerConfig,
    rng: &mut R,
) -> BisectionOutcome {
    let budget = targets.budgets();
    let limits = FmLimits {
        budget,
        max_passes: config.fm_max_passes,
        stall_limit: config.fm_stall_limit,
        scan_cap: 128,
        boundary_only: config.boundary_fm,
    };

    // --- Coarsening phase: build the hierarchy. ---
    let coarsen_timer = mg_obs::phase("coarsening");
    let mut graphs: Vec<Hypergraph> = Vec::new();
    let mut maps: Vec<Vec<Idx>> = Vec::new();
    loop {
        let current = graphs.last().unwrap_or(h);
        if current.num_vertices() <= config.coarsest_vertices
            || maps.len() as u32 >= config.max_levels
        {
            break;
        }
        let clustering = cluster_vertices(current, config, rng);
        let reduction = 1.0 - clustering.num_clusters as f64 / current.num_vertices().max(1) as f64;
        if reduction < config.min_reduction {
            break;
        }
        let level = contract(current, &clustering);
        maps.push(level.map);
        graphs.push(level.coarse);
    }

    drop(coarsen_timer);

    // --- Initial partition at the coarsest level. ---
    let initial_timer = mg_obs::phase("initial_partition");
    let coarsest = graphs.last().unwrap_or(h);
    let bp = initial_partition(coarsest, targets, config, rng);
    let mut sides = bp.into_sides();
    drop(initial_timer);

    // --- Uncoarsening: project up and refine at every level. ---
    // One scratch serves every level (and the V-cycles below): the gain
    // buckets and move logs are reset, not reallocated, per pass.
    let mut scratch = FmScratch::new();
    let refine_timer = mg_obs::phase("fm_refinement");
    for level in (0..maps.len()).rev() {
        sides = project_sides(&maps[level], &sides);
        let finer: &Hypergraph = if level == 0 { h } else { &graphs[level - 1] };
        let mut bp = VertexBipartition::new(finer, sides);
        fm_refine_with_scratch(finer, &mut bp, &limits, &mut scratch);
        sides = bp.into_sides();
    }
    // If no coarsening happened, still refine on the original graph.
    if maps.is_empty() {
        let mut bp = VertexBipartition::new(h, sides);
        fm_refine_with_scratch(h, &mut bp, &limits, &mut scratch);
        sides = bp.into_sides();
    }
    drop(refine_timer);

    // --- Optional restricted V-cycles. ---
    for _ in 0..config.vcycles {
        sides = vcycle(h, sides, targets, config, rng, &mut scratch);
    }

    let bp = VertexBipartition::new(h, sides);
    BisectionOutcome {
        cut: bp.cut_weight(),
        part_weights: [bp.part_weight(0), bp.part_weight(1)],
        sides: bp.into_sides(),
    }
}

/// One restricted V-cycle (hMetis-style): coarsen without ever merging
/// vertices from different sides, so the current partition projects exactly,
/// then refine on the way back up. Never worsens the cut.
fn vcycle<R: Rng>(
    h: &Hypergraph,
    sides: Vec<u8>,
    targets: &BisectionTargets,
    config: &PartitionerConfig,
    rng: &mut R,
    scratch: &mut FmScratch,
) -> Vec<u8> {
    let budget = targets.budgets();
    let limits = FmLimits {
        budget,
        max_passes: config.fm_max_passes,
        stall_limit: config.fm_stall_limit,
        scan_cap: 128,
        boundary_only: config.boundary_fm,
    };

    let mut graphs: Vec<Hypergraph> = Vec::new();
    let mut maps: Vec<Vec<Idx>> = Vec::new();
    let mut level_sides: Vec<Vec<u8>> = vec![sides];
    loop {
        let current = graphs.last().unwrap_or(h);
        let current_sides = level_sides.last().expect("pushed above");
        if current.num_vertices() <= config.coarsest_vertices
            || maps.len() as u32 >= config.max_levels
        {
            break;
        }
        let clustering = cluster_vertices(current, config, rng);
        let restricted = restrict_clustering(&clustering, current_sides);
        let reduction = 1.0 - restricted.num_clusters as f64 / current.num_vertices().max(1) as f64;
        if reduction < config.min_reduction {
            break;
        }
        let level = contract(current, &restricted);
        // Every cluster is side-pure, so the coarse side is well defined.
        let mut coarse_sides = vec![0u8; restricted.num_clusters as usize];
        for (v, &c) in restricted.cluster.iter().enumerate() {
            coarse_sides[c as usize] = current_sides[v];
        }
        maps.push(level.map);
        graphs.push(level.coarse);
        level_sides.push(coarse_sides);
    }

    // Refine bottom-up from the coarsest level.
    let mut sides = level_sides.pop().expect("at least the input level");
    for level in (0..maps.len()).rev() {
        let graph: &Hypergraph = if level < graphs.len() {
            &graphs[level]
        } else {
            h
        };
        let mut bp = VertexBipartition::new(graph, sides);
        fm_refine_with_scratch(graph, &mut bp, &limits, scratch);
        sides = project_sides(&maps[level], &bp.into_sides());
    }
    let mut bp = VertexBipartition::new(h, sides);
    fm_refine_with_scratch(h, &mut bp, &limits, scratch);
    bp.into_sides()
}

/// Splits every mixed-side cluster of `clustering` into its side-0 and
/// side-1 sub-clusters, renumbering contiguously.
fn restrict_clustering(clustering: &Clustering, sides: &[u8]) -> Clustering {
    let k = clustering.num_clusters as usize;
    // (old cluster, side) → new id, assigned on first encounter.
    let mut remap = vec![[Idx::MAX; 2]; k];
    let mut next = 0 as Idx;
    let mut cluster = vec![0 as Idx; clustering.cluster.len()];
    for (v, &c) in clustering.cluster.iter().enumerate() {
        let side = sides[v] as usize;
        let slot = &mut remap[c as usize][side];
        if *slot == Idx::MAX {
            *slot = next;
            next += 1;
        }
        cluster[v] = *slot;
    }
    Clustering {
        cluster,
        num_clusters: next,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mg_hypergraph::HypergraphBuilder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// A 2D grid as a hypergraph (2-pin nets): the planar bisection value is
    /// well understood, so multilevel quality is easy to sanity check.
    fn grid(w: usize, hgt: usize) -> Hypergraph {
        let idx = |x: usize, y: usize| (y * w + x) as Idx;
        let mut b = HypergraphBuilder::new(vec![1; w * hgt]);
        for y in 0..hgt {
            for x in 0..w {
                if x + 1 < w {
                    b.add_net(1, [idx(x, y), idx(x + 1, y)]);
                }
                if y + 1 < hgt {
                    b.add_net(1, [idx(x, y), idx(x, y + 1)]);
                }
            }
        }
        b.build()
    }

    #[test]
    fn bisects_grid_well() {
        let h = grid(16, 16);
        let targets = BisectionTargets::even(h.total_vertex_weight(), 0.03);
        let cfg = PartitionerConfig::mondriaan_like();
        let mut rng = StdRng::seed_from_u64(11);
        let out = bipartition_hypergraph(&h, &targets, &cfg, &mut rng);
        let budget = targets.budgets();
        assert!(out.part_weights[0] <= budget[0]);
        assert!(out.part_weights[1] <= budget[1]);
        // Optimal cut for a 16x16 grid bisection is 16; multilevel FM should
        // land close. Generous bound to keep the test robust across seeds.
        assert!(out.cut <= 26, "cut {}", out.cut);
    }

    #[test]
    fn patoh_like_preset_also_works() {
        let h = grid(12, 12);
        let targets = BisectionTargets::even(h.total_vertex_weight(), 0.03);
        let cfg = PartitionerConfig::patoh_like();
        let mut rng = StdRng::seed_from_u64(12);
        let out = bipartition_hypergraph(&h, &targets, &cfg, &mut rng);
        let budget = targets.budgets();
        assert!(out.part_weights[0] <= budget[0]);
        assert!(out.part_weights[1] <= budget[1]);
        assert!(out.cut <= 20, "cut {}", out.cut);
    }

    #[test]
    fn cut_matches_reported_sides() {
        let h = grid(8, 8);
        let targets = BisectionTargets::even(h.total_vertex_weight(), 0.1);
        let cfg = PartitionerConfig::mondriaan_like();
        let mut rng = StdRng::seed_from_u64(13);
        let out = bipartition_hypergraph(&h, &targets, &cfg, &mut rng);
        let bp = VertexBipartition::new(&h, out.sides.clone());
        assert_eq!(bp.cut_weight(), out.cut);
    }

    #[test]
    fn small_graph_skips_coarsening() {
        let h = grid(4, 4); // 16 vertices < coarsest_vertices
        let targets = BisectionTargets::even(h.total_vertex_weight(), 0.0);
        let cfg = PartitionerConfig::mondriaan_like();
        let mut rng = StdRng::seed_from_u64(14);
        let out = bipartition_hypergraph(&h, &targets, &cfg, &mut rng);
        assert_eq!(out.part_weights[0], 8);
        assert_eq!(out.part_weights[1], 8);
        assert!(out.cut <= 8);
    }

    #[test]
    fn vcycle_never_worsens() {
        let h = grid(16, 16);
        let targets = BisectionTargets::even(h.total_vertex_weight(), 0.03);
        let mut cfg = PartitionerConfig::mondriaan_like();
        let mut rng = StdRng::seed_from_u64(15);
        let base = bipartition_hypergraph(&h, &targets, &cfg, &mut rng);
        cfg.vcycles = 2;
        let mut rng = StdRng::seed_from_u64(15);
        let cycled = bipartition_hypergraph(&h, &targets, &cfg, &mut rng);
        assert!(cycled.cut <= base.cut, "{} vs {}", cycled.cut, base.cut);
    }

    #[test]
    fn uneven_targets_respected() {
        let h = grid(10, 10);
        let total = h.total_vertex_weight();
        let targets = BisectionTargets {
            target: [(total * 3) / 4, total - (total * 3) / 4],
            epsilon: 0.05,
        };
        let cfg = PartitionerConfig::mondriaan_like();
        let mut rng = StdRng::seed_from_u64(16);
        let out = bipartition_hypergraph(&h, &targets, &cfg, &mut rng);
        let budget = targets.budgets();
        assert!(out.part_weights[0] <= budget[0]);
        assert!(out.part_weights[1] <= budget[1]);
    }

    #[test]
    fn weighted_vertices_balance_by_weight() {
        // 4 heavy vertices + 60 light in a chain.
        let mut weights = vec![1u64; 64];
        for w in weights.iter_mut().take(4) {
            *w = 20;
        }
        let mut b = HypergraphBuilder::new(weights);
        for v in 0..63u32 {
            b.add_net(1, [v, v + 1]);
        }
        let h = b.build();
        let targets = BisectionTargets::even(h.total_vertex_weight(), 0.05);
        let cfg = PartitionerConfig::mondriaan_like();
        let mut rng = StdRng::seed_from_u64(17);
        let out = bipartition_hypergraph(&h, &targets, &cfg, &mut rng);
        let budget = targets.budgets();
        assert!(out.part_weights[0] <= budget[0]);
        assert!(out.part_weights[1] <= budget[1]);
    }

    #[test]
    fn restrict_clustering_splits_mixed() {
        let c = Clustering {
            cluster: vec![0, 0, 1, 1],
            num_clusters: 2,
        };
        let sides = vec![0, 1, 1, 1];
        let r = restrict_clustering(&c, &sides);
        r.validate().unwrap();
        assert_eq!(r.num_clusters, 3);
        assert_ne!(r.cluster[0], r.cluster[1]);
        assert_eq!(r.cluster[2], r.cluster[3]);
    }
}

//! Initial partitioning at the coarsest level.
//!
//! Generates several candidate bipartitions — alternating randomized
//! balanced assignments and greedy net-growing (BFS) regions — polishes each
//! with FM, and keeps the best by `(violation, cut)`.

use crate::config::PartitionerConfig;
use crate::fm::{fm_refine_with_scratch, FmLimits, FmScratch};
use crate::multilevel::BisectionTargets;
use crate::Idx;
use mg_hypergraph::{Hypergraph, VertexBipartition};
use rand::seq::SliceRandom;
use rand::Rng;

/// Coarsest sizes up to this bound are solved *exactly* by Gray-code
/// enumeration instead of heuristically — 2¹² states, each one vertex flip
/// from the previous, so the full scan costs `O(2¹² · avg degree)`.
const EXHAUSTIVE_LIMIT: u32 = 12;

/// Produces the best initial bipartition of (usually coarse) `h` for the
/// given targets.
pub fn initial_partition<R: Rng>(
    h: &Hypergraph,
    targets: &BisectionTargets,
    config: &PartitionerConfig,
    rng: &mut R,
) -> VertexBipartition {
    let budget = targets.budgets();
    if h.num_vertices() <= EXHAUSTIVE_LIMIT && h.num_vertices() > 0 {
        return exhaustive_best(h, &budget);
    }
    let limits = FmLimits {
        budget,
        max_passes: config.fm_max_passes,
        stall_limit: config.fm_stall_limit,
        scan_cap: 128,
        boundary_only: config.boundary_fm,
    };
    let candidates = config.initial_candidates.max(1);
    let mut best: Option<VertexBipartition> = None;
    // One scratch polishes every candidate.
    let mut scratch = FmScratch::new();
    for c in 0..candidates {
        let sides = if c % 2 == 0 {
            random_balanced(h, targets, rng)
        } else {
            greedy_grow(h, targets, rng)
        };
        let mut bp = VertexBipartition::new(h, sides);
        fm_refine_with_scratch(h, &mut bp, &limits, &mut scratch);
        let key = candidate_key(&bp, &budget);
        if best
            .as_ref()
            .is_none_or(|b| key < candidate_key(b, &budget))
        {
            best = Some(bp);
        }
    }
    best.expect("at least one candidate")
}

/// Exact optimum over all 2ⁿ bipartitions, minimising
/// `(budget violation, cut)`. Walks the assignments in Gray-code order so
/// consecutive states differ by a single vertex flip, reusing the
/// incremental `move_vertex` machinery.
fn exhaustive_best(h: &Hypergraph, budget: &[u64; 2]) -> VertexBipartition {
    let n = h.num_vertices();
    debug_assert!((1..=EXHAUSTIVE_LIMIT).contains(&n));
    let mut bp = VertexBipartition::all_zero(h);
    let violation = |bp: &VertexBipartition| -> u64 {
        bp.part_weight(0).saturating_sub(budget[0]) + bp.part_weight(1).saturating_sub(budget[1])
    };
    let mut best_sides = bp.sides().to_vec();
    let mut best_key = (violation(&bp), bp.cut_weight());
    for step in 1u64..(1u64 << n) {
        // The bit flipped between Gray(step-1) and Gray(step) is the index
        // of the lowest set bit of `step`.
        let flip = step.trailing_zeros();
        bp.move_vertex(h, flip);
        let key = (violation(&bp), bp.cut_weight());
        if key < best_key {
            best_key = key;
            best_sides.copy_from_slice(bp.sides());
        }
    }
    VertexBipartition::new(h, best_sides)
}

fn candidate_key(bp: &VertexBipartition, budget: &[u64; 2]) -> (u64, u64) {
    let violation =
        bp.part_weight(0).saturating_sub(budget[0]) + bp.part_weight(1).saturating_sub(budget[1]);
    (violation, bp.cut_weight())
}

/// Randomized balanced assignment: vertices in random order, each placed on
/// the side with the larger remaining capacity toward its target.
fn random_balanced<R: Rng>(h: &Hypergraph, targets: &BisectionTargets, rng: &mut R) -> Vec<u8> {
    let n = h.num_vertices() as usize;
    let mut order: Vec<Idx> = (0..n as Idx).collect();
    order.shuffle(rng);
    let mut sides = vec![0u8; n];
    let mut weight = [0u64; 2];
    for &v in &order {
        let remaining0 = targets.target[0].saturating_sub(weight[0]);
        let remaining1 = targets.target[1].saturating_sub(weight[1]);
        let side = if remaining0 > remaining1 {
            0
        } else if remaining1 > remaining0 {
            1
        } else {
            rng.gen_range(0..2) as usize
        };
        sides[v as usize] = side as u8;
        weight[side] += h.vertex_weight(v);
    }
    sides
}

/// Greedy net-growing: BFS over hypergraph adjacency from a random seed,
/// absorbing vertices into part 0 until its target weight is reached;
/// everything else goes to part 1. Disconnected components get fresh seeds.
fn greedy_grow<R: Rng>(h: &Hypergraph, targets: &BisectionTargets, rng: &mut R) -> Vec<u8> {
    let n = h.num_vertices() as usize;
    if n == 0 {
        return Vec::new();
    }
    let mut sides = vec![1u8; n];
    let mut visited = vec![false; n];
    let mut queue: std::collections::VecDeque<Idx> = std::collections::VecDeque::new();
    let mut weight0 = 0u64;
    let target0 = targets.target[0];
    let mut remaining: Vec<Idx> = (0..n as Idx).collect();
    remaining.shuffle(rng);
    let mut seed_cursor = 0usize;

    while weight0 < target0 {
        let v = match queue.pop_front() {
            Some(v) => v,
            None => {
                // Need a new seed (start, or ran out of a component).
                let mut found = None;
                while seed_cursor < remaining.len() {
                    let cand = remaining[seed_cursor];
                    seed_cursor += 1;
                    if !visited[cand as usize] {
                        found = Some(cand);
                        break;
                    }
                }
                match found {
                    Some(v) => v,
                    None => break, // all vertices absorbed
                }
            }
        };
        if visited[v as usize] {
            continue;
        }
        visited[v as usize] = true;
        sides[v as usize] = 0;
        weight0 += h.vertex_weight(v);
        for &net in h.vertex_nets(v) {
            for &u in h.net_pins(net) {
                if !visited[u as usize] {
                    queue.push_back(u);
                }
            }
        }
    }
    sides
}

#[cfg(test)]
mod tests {
    use super::*;
    use mg_hypergraph::HypergraphBuilder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ring(n: usize) -> Hypergraph {
        let mut b = HypergraphBuilder::new(vec![1; n]);
        for v in 0..n {
            b.add_net(1, [v as Idx, ((v + 1) % n) as Idx]);
        }
        b.build()
    }

    fn targets_even(h: &Hypergraph, eps: f64) -> BisectionTargets {
        let w = h.total_vertex_weight();
        BisectionTargets {
            target: [w.div_ceil(2), w / 2],
            epsilon: eps,
        }
    }

    #[test]
    fn produces_feasible_balanced_partition() {
        let h = ring(32);
        let t = targets_even(&h, 0.03);
        let mut rng = StdRng::seed_from_u64(1);
        let cfg = PartitionerConfig::mondriaan_like();
        let bp = initial_partition(&h, &t, &cfg, &mut rng);
        let budget = t.budgets();
        assert!(bp.part_weight(0) <= budget[0]);
        assert!(bp.part_weight(1) <= budget[1]);
        // A ring's optimal bisection cut is 2; FM-polished candidates
        // should find it (or at worst stay very close).
        assert!(bp.cut_weight() <= 4, "cut {}", bp.cut_weight());
    }

    #[test]
    fn greedy_grow_reaches_target() {
        let h = ring(20);
        let t = targets_even(&h, 0.0);
        let mut rng = StdRng::seed_from_u64(2);
        let sides = greedy_grow(&h, &t, &mut rng);
        let w0: u64 = (0..20)
            .filter(|&v| sides[v] == 0)
            .map(|v| h.vertex_weight(v as Idx))
            .sum();
        assert!(w0 >= 10);
        // BFS growth on a ring yields one contiguous arc: exactly 2 cut nets.
        let bp = VertexBipartition::new(&h, sides);
        assert_eq!(bp.cut_weight(), 2);
    }

    #[test]
    fn random_balanced_is_roughly_even() {
        let h = ring(100);
        let t = targets_even(&h, 0.0);
        let mut rng = StdRng::seed_from_u64(3);
        let sides = random_balanced(&h, &t, &mut rng);
        let w0 = sides.iter().filter(|&&s| s == 0).count();
        assert!((45..=55).contains(&w0), "w0 = {w0}");
    }

    #[test]
    fn handles_disconnected_graphs() {
        // Two disjoint rings; greedy grow must hop components.
        let mut b = HypergraphBuilder::new(vec![1; 16]);
        for v in 0..8u32 {
            b.add_net(1, [v, (v + 1) % 8]);
            b.add_net(1, [8 + v, 8 + (v + 1) % 8]);
        }
        let h = b.build();
        let t = targets_even(&h, 0.03);
        let mut rng = StdRng::seed_from_u64(4);
        let cfg = PartitionerConfig::mondriaan_like();
        let bp = initial_partition(&h, &t, &cfg, &mut rng);
        let budget = t.budgets();
        assert!(bp.part_weight(0) <= budget[0]);
        assert!(bp.part_weight(1) <= budget[1]);
        // Ideal: split along components, cut 0.
        assert!(bp.cut_weight() <= 4);
    }

    #[test]
    fn exhaustive_matches_brute_force_oracle() {
        // A ring of 8 has optimal cut 2 with a contiguous arc; the
        // exhaustive search must find it exactly.
        let h = ring(8);
        let t = targets_even(&h, 0.0);
        let bp = exhaustive_best(&h, &t.budgets());
        assert_eq!(bp.cut_weight(), 2);
        assert_eq!(bp.part_weight(0), 4);
        assert_eq!(bp.part_weight(1), 4);
    }

    #[test]
    fn exhaustive_prefers_feasibility_over_cut() {
        // Heavy pair net: keeping it whole means violation; the optimum
        // under the budget must cut it.
        let mut b = HypergraphBuilder::new(vec![3, 3]);
        b.add_net(10, [0, 1]);
        let h = b.build();
        let bp = exhaustive_best(&h, &[3, 3]);
        assert_eq!(bp.cut_weight(), 10);
        assert_eq!(bp.part_weight(0), 3);
    }

    #[test]
    fn tiny_initial_partition_is_exact() {
        // Through the public entry point: ≤ 12 vertices takes the
        // exhaustive path.
        let h = ring(10);
        let t = targets_even(&h, 0.0);
        let cfg = PartitionerConfig::mondriaan_like();
        let mut rng = StdRng::seed_from_u64(1);
        let bp = initial_partition(&h, &t, &cfg, &mut rng);
        assert_eq!(bp.cut_weight(), 2);
    }

    #[test]
    fn single_vertex_hypergraph() {
        let b = HypergraphBuilder::new(vec![5]);
        let h = b.build();
        let t = BisectionTargets {
            target: [5, 0],
            epsilon: 0.0,
        };
        let mut rng = StdRng::seed_from_u64(5);
        let cfg = PartitionerConfig::mondriaan_like();
        let bp = initial_partition(&h, &t, &cfg, &mut rng);
        assert_eq!(bp.cut_weight(), 0);
    }
}

//! The out-of-band exposition endpoint: a tiny HTTP/1.0 server that
//! answers every request with a Prometheus-style text snapshot of the
//! global registry, the matching [`scrape`] client, and a schema
//! validator for CI (`mgpart metrics ADDR --schema FILE`).
//!
//! The endpoint is strictly out-of-band: it binds its own port and never
//! touches the protocol's stdout stream, so enabling it cannot perturb
//! golden responses.

use crate::metrics::registry;
use crate::trace;
use std::collections::BTreeMap;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// A running metrics endpoint (`--metrics-addr HOST:PORT`).
pub struct MetricsServer {
    /// The bound address (useful with port 0).
    pub local_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl MetricsServer {
    /// Binds `addr` and starts answering scrapes with snapshots of the
    /// global registry. The endpoint runs until the handle drops.
    pub fn bind(addr: &str) -> std::io::Result<MetricsServer> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let stop = shutdown.clone();
        let thread = std::thread::Builder::new()
            .name("mg-obs-metrics".into())
            .spawn(move || serve_loop(&listener, &stop))?;
        Ok(MetricsServer {
            local_addr,
            shutdown,
            thread: Some(thread),
        })
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

fn serve_loop(listener: &TcpListener, shutdown: &Arc<AtomicBool>) {
    while !shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let _ = answer(stream);
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => break,
        }
    }
}

/// Reads the request head and answers by path: `/trace` serves the
/// trace collector as Chrome-trace-event JSON, everything else —
/// including no request at all, from a bare `nc` — gets the metrics
/// snapshot, which stays the default resource.
fn answer(mut stream: TcpStream) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_millis(500)))?;
    let mut head = Vec::new();
    let mut chunk = [0u8; 1024];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => {
                head.extend_from_slice(&chunk[..n]);
                if head.windows(4).any(|w| w == b"\r\n\r\n")
                    || head.windows(2).any(|w| w == b"\n\n")
                {
                    break;
                }
                if head.len() > 16 * 1024 {
                    break;
                }
            }
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => break,
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    let (body, content_type) = if request_path(&head).is_some_and(|p| p == "/trace") {
        (trace::collector().export_json(), "application/json")
    } else {
        (registry().render(), "text/plain; version=0.0.4")
    };
    let response = format!(
        "HTTP/1.0 200 OK\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
        content_type,
        body.len(),
        body
    );
    stream.write_all(response.as_bytes())?;
    stream.flush()
}

/// The path token of the request line (`GET /trace HTTP/1.0` → `/trace`).
fn request_path(head: &[u8]) -> Option<&str> {
    let text = std::str::from_utf8(head).ok()?;
    let line = text.lines().next()?;
    let mut parts = line.split_whitespace();
    let _method = parts.next()?;
    parts.next()
}

fn http_get(addr: &str, path: &str) -> std::io::Result<String> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    stream.write_all(format!("GET {path} HTTP/1.0\r\nHost: mgpart\r\n\r\n").as_bytes())?;
    let mut text = String::new();
    stream.read_to_string(&mut text)?;
    let body = match text.split_once("\r\n\r\n") {
        Some((_headers, body)) => body,
        None => text.as_str(),
    };
    Ok(body.to_string())
}

/// Scrapes `addr` and returns the exposition body (headers stripped).
pub fn scrape(addr: &str) -> std::io::Result<String> {
    http_get(addr, "/metrics")
}

/// Fetches `addr`'s `/trace` route: the collector's Perfetto JSON.
pub fn scrape_trace(addr: &str) -> std::io::Result<String> {
    http_get(addr, "/trace")
}

/// Parses a metrics schema file: one `name kind` pair per line, `#`
/// comments and blank lines ignored. Kinds are `counter`, `gauge`,
/// `histogram`.
pub fn parse_schema(text: &str) -> Result<BTreeMap<String, String>, String> {
    let mut schema = BTreeMap::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let (Some(name), Some(kind), None) = (parts.next(), parts.next(), parts.next()) else {
            return Err(format!("schema line {}: want `name kind`", lineno + 1));
        };
        if !matches!(kind, "counter" | "gauge" | "histogram") {
            return Err(format!("schema line {}: unknown kind {kind}", lineno + 1));
        }
        schema.insert(name.to_string(), kind.to_string());
    }
    Ok(schema)
}

/// Resolves a sample name to its family: histograms expose `_bucket`,
/// `_sum` and `_count` series.
fn family_of<'a>(name: &'a str, schema: &BTreeMap<String, String>) -> Option<&'a str> {
    if schema.contains_key(name) {
        return Some(name);
    }
    for suffix in ["_bucket", "_sum", "_count"] {
        if let Some(base) = name.strip_suffix(suffix) {
            if schema.get(base).map(String::as_str) == Some("histogram") {
                return Some(base);
            }
        }
    }
    None
}

/// Validates a scraped exposition body against a schema: every `# TYPE`
/// declaration and every sample must belong to a declared family with
/// the declared kind, and every sample value must parse as a float.
/// Returns the number of samples seen.
pub fn validate_exposition(text: &str, schema: &BTreeMap<String, String>) -> Result<usize, String> {
    let mut samples = 0usize;
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim_end();
        if line.is_empty() {
            continue;
        }
        let fail = |msg: String| Err(format!("line {}: {msg}", lineno + 1));
        if let Some(rest) = line.strip_prefix('#') {
            let rest = rest.trim_start();
            if let Some(decl) = rest.strip_prefix("TYPE ") {
                let mut parts = decl.split_whitespace();
                let (Some(name), Some(kind)) = (parts.next(), parts.next()) else {
                    return fail("malformed # TYPE".to_string());
                };
                match schema.get(name) {
                    None => return fail(format!("undeclared metric family {name}")),
                    Some(expected) if expected != kind => {
                        return fail(format!("{name} declared {kind}, schema says {expected}"))
                    }
                    Some(_) => {}
                }
            }
            continue; // other comments are legal
        }
        // Sample: `name value` or `name{labels} value`.
        let (series, value) = match line.rsplit_once(' ') {
            Some(pair) => pair,
            None => return fail("sample without value".to_string()),
        };
        if value.parse::<f64>().is_err() {
            return fail(format!("unparsable value {value}"));
        }
        let name = match series.split_once('{') {
            Some((name, labels)) => {
                if !labels.ends_with('}') {
                    return fail(format!("unterminated labels on {series}"));
                }
                name
            }
            None => series,
        };
        if family_of(name, schema).is_none() {
            return fail(format!("sample for undeclared metric {name}"));
        }
        samples += 1;
    }
    Ok(samples)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Registry;

    fn schema() -> BTreeMap<String, String> {
        parse_schema(
            "# test schema\n\
             t_x_total counter\n\
             t_y_live gauge\n\
             t_z_seconds histogram\n",
        )
        .unwrap()
    }

    #[test]
    fn rendered_registry_validates_against_schema() {
        let r = Registry::new();
        r.counter("t_x_total", &[("op", "ping")]).inc();
        r.gauge("t_y_live", &[]).set(2);
        r.histogram("t_z_seconds", &[], &[0.01, 1.0]).observe(0.5);
        let text = r.render();
        let n = validate_exposition(&text, &schema()).unwrap();
        // 1 counter + 1 gauge + (3 buckets + sum + count) = 7 samples.
        assert_eq!(n, 7);
    }

    #[test]
    fn undeclared_family_is_rejected() {
        let err = validate_exposition("t_rogue_total 3\n", &schema()).unwrap_err();
        assert!(err.contains("t_rogue_total"), "{err}");
    }

    #[test]
    fn kind_mismatch_is_rejected() {
        let err = validate_exposition("# TYPE t_x_total gauge\n", &schema()).unwrap_err();
        assert!(err.contains("schema says counter"), "{err}");
    }

    #[test]
    fn bad_value_is_rejected() {
        let err = validate_exposition("t_x_total many\n", &schema()).unwrap_err();
        assert!(err.contains("unparsable"), "{err}");
    }

    #[test]
    fn trace_route_serves_collector_json() {
        let ctx = trace::TraceContext::new_root();
        trace::record_span(
            ctx.trace_id,
            ctx.span_id,
            None,
            "route",
            7,
            Duration::from_micros(3),
        );
        let server = MetricsServer::bind("127.0.0.1:0").unwrap();
        let addr = server.local_addr.to_string();
        let body = scrape_trace(&addr).unwrap();
        assert!(body.contains("\"traceEvents\""), "trace body: {body}");
        assert!(
            body.contains(&trace::trace_id_hex(ctx.trace_id)),
            "trace body misses the recorded span: {body}"
        );
        // The default resource is still the metrics snapshot.
        let metrics = scrape(&addr).unwrap();
        assert!(!metrics.contains("traceEvents"), "metrics body: {metrics}");
        drop(server);
    }

    #[test]
    fn endpoint_serves_global_registry_over_tcp() {
        registry().counter("t_expose_roundtrip_total", &[]).add(9);
        let server = MetricsServer::bind("127.0.0.1:0").unwrap();
        let body = scrape(&server.local_addr.to_string()).unwrap();
        assert!(
            body.contains("t_expose_roundtrip_total 9"),
            "scrape body: {body}"
        );
        drop(server); // joins the accept thread
    }
}

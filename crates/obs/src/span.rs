//! Timing spans: phase timers that feed the `mgpart_phase_seconds`
//! histogram (the paper's Fig. 5 time profile, live), and generic spans
//! that emit start/end log events carrying session/request/shard ids.

use crate::log::{self, Level, Value};
use crate::metrics::{registry, Histogram};
use crate::trace::{self, TraceContext};
use std::time::Instant;

/// The partitioner's phases, mirroring the paper's Fig. 5 breakdown:
/// medium-grain A^c/A^r model build, coarsening, initial partition, FM
/// refinement during uncoarsening, and the final λ−1 volume count over
/// the mapped nonzero partition (eqn (3)).
pub const PHASES: &[&str] = &[
    "medium_grain_build",
    "coarsening",
    "initial_partition",
    "fm_refinement",
    "volume_count",
];

/// Bucket upper bounds (seconds) for phase histograms: 10 µs … 10 s.
pub const PHASE_BOUNDS: &[f64] = &[1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1.0, 10.0];

/// The histogram family phase timers record into.
pub const PHASE_METRIC: &str = "mgpart_phase_seconds";

/// Starts timing one phase; the elapsed time is recorded into
/// `mgpart_phase_seconds{phase="..."}` when the returned timer drops.
pub fn phase(name: &'static str) -> PhaseTimer {
    PhaseTimer {
        histogram: registry().histogram(PHASE_METRIC, &[("phase", name)], PHASE_BOUNDS),
        name,
        trace: trace::current().map(|ctx| (ctx, trace::now_us())),
        start: Instant::now(),
    }
}

/// `(count, sum_seconds)` recorded so far for one phase — the bench
/// harness snapshots these around a run to compute per-phase deltas.
pub fn phase_stats(name: &str) -> (u64, f64) {
    let h = registry().histogram(PHASE_METRIC, &[("phase", name)], PHASE_BOUNDS);
    (h.count(), h.sum_seconds())
}

/// A running phase timer; records on drop. When a trace context is
/// installed on the opening thread, the drop also records a child span
/// named after the phase, so one traced request shows its FM
/// refinement (etc.) nested under the engine's `execute` span.
pub struct PhaseTimer {
    histogram: Histogram,
    name: &'static str,
    trace: Option<(TraceContext, u64)>,
    start: Instant,
}

impl Drop for PhaseTimer {
    fn drop(&mut self) {
        let elapsed = self.start.elapsed();
        self.histogram.observe(elapsed.as_secs_f64());
        if let Some((ctx, start_us)) = self.trace {
            trace::record_child(&ctx, self.name, start_us, elapsed);
        }
    }
}

/// A debug-level span: emits `span_start` when created and `span_end`
/// (with `elapsed_ms`) when dropped, both carrying the given fields —
/// typically session/request/shard ids.
pub struct Span {
    name: &'static str,
    /// `Some` only when `debug` was enabled at open time; `None` spans
    /// skip the end event too, keeping the disabled path allocation-free.
    fields: Option<Vec<(&'static str, Value)>>,
    start: Instant,
}

/// Opens a span. The field vector is built lazily, so when `debug` is
/// disabled a span costs only an `Instant` — no allocation, no clone.
pub fn span(name: &'static str, fields: impl FnOnce() -> Vec<(&'static str, Value)>) -> Span {
    let fields = log::enabled(Level::Debug).then(|| {
        let fields = fields();
        let mut start_fields = fields.clone();
        start_fields.push(("span", Value::Str("start".to_string())));
        log::debug(name, &start_fields);
        fields
    });
    Span {
        name,
        fields,
        start: Instant::now(),
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(fields) = self.fields.take() {
            let elapsed_ms = self.start.elapsed().as_secs_f64() * 1e3;
            let mut end_fields = fields;
            end_fields.push(("span", Value::Str("end".to_string())));
            end_fields.push(("elapsed_ms", Value::F64(elapsed_ms)));
            log::debug(self.name, &end_fields);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_timer_records_into_global_histogram() {
        let (count0, _) = phase_stats("medium_grain_build");
        {
            let _t = phase("medium_grain_build");
        }
        let (count1, _) = phase_stats("medium_grain_build");
        assert!(count1 > count0);
    }

    #[test]
    fn span_drop_is_quiet_at_default_level() {
        // Default level is info, so this exercises only the cheap path:
        // the closure must never run and no field vector is built.
        let s = span("test_span", || {
            panic!("fields must stay lazy when debug is disabled")
        });
        drop(s);
    }

    #[test]
    fn phase_timer_records_trace_child_span_when_context_active() {
        let ctx = trace::TraceContext::new_root();
        {
            let _g = trace::enter(ctx);
            let _t = phase("volume_count");
        }
        let (_, spans) = trace::collector().snapshot();
        let child = spans
            .iter()
            .find(|s| s.trace_id == ctx.trace_id && s.name == "volume_count")
            .expect("phase drop records a child span under the active trace");
        assert_eq!(child.parent_id, Some(ctx.span_id));
    }
}

//! Distributed tracing: trace-context propagation, a bounded
//! ring-buffer collector, and a deterministic Chrome-trace-event
//! (Perfetto) JSON exporter.
//!
//! A [`TraceContext`] is a 128-bit trace id plus the 64-bit id of the
//! span that owns the current scope (and that span's parent). Contexts
//! cross the wire as an optional `trace` request field (see
//! PROTOCOL.md) and cross threads either explicitly or through the
//! thread-local installed by [`enter`]. Finished spans land in the
//! process-global [`collector()`], a bounded ring guarded by one
//! short-held mutex, and are exported out-of-band on the metrics
//! endpoint's `/trace` route — tracing never touches protocol bytes.
//!
//! The collector also supports *speculative* traces for the
//! `--trace-slow-ms` sampler: spans buffer in a side map until the
//! request finishes, then are committed to the ring (slow request) or
//! discarded (fast request).

use std::cell::Cell;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::{Duration, SystemTime, UNIX_EPOCH};

/// Propagated trace identity: which trace we are in, which span owns
/// the current scope, and that span's parent (if any).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceContext {
    /// 128-bit trace id shared by every span of one request tree.
    pub trace_id: u128,
    /// The span that owns the current scope; children parent to it.
    pub span_id: u64,
    /// Parent of `span_id`, when known (root spans have none).
    pub parent_id: Option<u64>,
}

impl TraceContext {
    /// A fresh root context: new trace id, new span id, no parent.
    pub fn new_root() -> TraceContext {
        TraceContext {
            trace_id: next_trace_id(),
            span_id: next_span_id(),
            parent_id: None,
        }
    }

    /// A child context under this one: same trace, fresh span id.
    pub fn child(&self) -> TraceContext {
        TraceContext {
            trace_id: self.trace_id,
            span_id: next_span_id(),
            parent_id: Some(self.span_id),
        }
    }
}

/// A context as carried by the wire `trace` request field: the trace
/// id plus the sender's span id (`trace.parent`), which receiver-side
/// spans parent to. `parent` is `None` when the sender stamped a trace
/// id without opening a span of its own.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WireTrace {
    pub trace_id: u128,
    pub parent: Option<u64>,
}

/// One finished span, as stored in the collector.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanRecord {
    pub trace_id: u128,
    pub span_id: u64,
    pub parent_id: Option<u64>,
    pub name: &'static str,
    /// Wall-clock start, microseconds since the UNIX epoch, so spans
    /// from different processes line up on one Perfetto timeline.
    pub start_us: u64,
    pub dur_us: u64,
}

// --- id generation --------------------------------------------------

/// SplitMix64 finaliser: a cheap, well-distributed bijection on u64.
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

fn process_seed() -> u64 {
    static SEED: OnceLock<u64> = OnceLock::new();
    *SEED.get_or_init(|| {
        let nanos = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0);
        mix64(nanos ^ (std::process::id() as u64).rotate_left(32))
    })
}

/// A fresh nonzero span id, unique within this process and unlikely to
/// collide across processes (seeded from wall clock and pid). Trace
/// output is out-of-band, so ids need uniqueness, not determinism.
pub fn next_span_id() -> u64 {
    static COUNTER: AtomicU64 = AtomicU64::new(1);
    loop {
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let id = mix64(process_seed() ^ n);
        if id != 0 {
            return id;
        }
    }
}

/// A fresh nonzero 128-bit trace id.
pub fn next_trace_id() -> u128 {
    loop {
        let id = ((next_span_id() as u128) << 64) | next_span_id() as u128;
        if id != 0 {
            return id;
        }
    }
}

/// Microseconds since the UNIX epoch, now.
pub fn now_us() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_micros() as u64)
        .unwrap_or(0)
}

// --- wire encoding --------------------------------------------------

/// 32 lowercase hex chars — the `trace.id` wire spelling.
pub fn trace_id_hex(id: u128) -> String {
    format!("{id:032x}")
}

/// 16 lowercase hex chars — the `trace.parent` wire spelling.
pub fn span_id_hex(id: u64) -> String {
    format!("{id:016x}")
}

/// Parses a `trace.id` value: exactly 32 lowercase hex chars.
pub fn parse_trace_id(s: &str) -> Option<u128> {
    if s.len() != 32
        || !s
            .bytes()
            .all(|b| b.is_ascii_hexdigit() && !b.is_ascii_uppercase())
    {
        return None;
    }
    u128::from_str_radix(s, 16).ok()
}

/// Parses a `trace.parent` value: exactly 16 lowercase hex chars.
pub fn parse_span_id(s: &str) -> Option<u64> {
    if s.len() != 16
        || !s
            .bytes()
            .all(|b| b.is_ascii_hexdigit() && !b.is_ascii_uppercase())
    {
        return None;
    }
    u64::from_str_radix(s, 16).ok()
}

// --- thread-local propagation ---------------------------------------

thread_local! {
    static CURRENT: Cell<Option<TraceContext>> = const { Cell::new(None) };
}

/// The context installed on this thread, if any. Phase timers consult
/// this to decide whether to record child spans.
pub fn current() -> Option<TraceContext> {
    CURRENT.get()
}

/// Installs `ctx` on this thread until the guard drops (the previous
/// context, if any, is restored).
pub fn enter(ctx: TraceContext) -> ScopeGuard {
    ScopeGuard {
        prev: CURRENT.replace(Some(ctx)),
    }
}

/// Restores the previous thread-local context on drop.
pub struct ScopeGuard {
    prev: Option<TraceContext>,
}

impl Drop for ScopeGuard {
    fn drop(&mut self) {
        CURRENT.set(self.prev.take());
    }
}

// --- the collector --------------------------------------------------

/// Default ring capacity: enough for a few hundred request trees.
pub const DEFAULT_CAPACITY: usize = 4096;

/// At most this many speculative traces buffer at once; the oldest is
/// dropped when a new one would exceed it.
const PENDING_TRACES: usize = 256;

/// At most this many spans per speculative trace.
const PENDING_SPANS: usize = 64;

struct Inner {
    ring: VecDeque<SpanRecord>,
    capacity: usize,
    pending: HashMap<u128, Vec<SpanRecord>>,
    pending_order: VecDeque<u128>,
    dropped: u64,
    process: String,
}

/// A bounded buffer of finished spans. The mutex is held only for a
/// push or a snapshot — there is no per-span allocation beyond the
/// record itself.
pub struct TraceCollector {
    inner: Mutex<Inner>,
}

impl TraceCollector {
    /// An empty collector holding at most `capacity` committed spans.
    pub fn new(capacity: usize) -> TraceCollector {
        TraceCollector {
            inner: Mutex::new(Inner {
                ring: VecDeque::new(),
                capacity: capacity.max(1),
                pending: HashMap::new(),
                pending_order: VecDeque::new(),
                dropped: 0,
                process: String::from("mgpart"),
            }),
        }
    }

    fn lock(&self) -> MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Names this process in exported traces (`router`, `shard:s1`, ...).
    pub fn set_process(&self, name: &str) {
        name.clone_into(&mut self.lock().process);
    }

    /// Adds one finished span. Spans of a speculative trace buffer
    /// aside until [`commit`](Self::commit) or
    /// [`discard`](Self::discard); everything else goes straight to the
    /// ring, evicting the oldest span when full.
    pub fn record(&self, rec: SpanRecord) {
        let mut inner = self.lock();
        if let Some(buf) = inner.pending.get_mut(&rec.trace_id) {
            if buf.len() < PENDING_SPANS {
                buf.push(rec);
            } else {
                inner.dropped += 1;
            }
            return;
        }
        push_ring(&mut inner, rec);
    }

    /// Opens a speculative trace for the slow-request sampler: a fresh
    /// root context whose spans buffer aside until the verdict.
    pub fn begin_speculative(&self) -> TraceContext {
        let ctx = TraceContext::new_root();
        let mut inner = self.lock();
        while inner.pending.len() >= PENDING_TRACES {
            match inner.pending_order.pop_front() {
                Some(old) => {
                    if let Some(buf) = inner.pending.remove(&old) {
                        inner.dropped += buf.len() as u64;
                    }
                }
                None => break,
            }
        }
        inner.pending.insert(ctx.trace_id, Vec::new());
        inner.pending_order.push_back(ctx.trace_id);
        ctx
    }

    /// Moves a speculative trace's spans into the ring (the request was
    /// slow enough to keep).
    pub fn commit(&self, trace_id: u128) {
        let mut inner = self.lock();
        if let Some(buf) = inner.pending.remove(&trace_id) {
            inner.pending_order.retain(|&t| t != trace_id);
            for rec in buf {
                push_ring(&mut inner, rec);
            }
        }
    }

    /// Drops a speculative trace (the request finished fast).
    pub fn discard(&self, trace_id: u128) {
        let mut inner = self.lock();
        if inner.pending.remove(&trace_id).is_some() {
            inner.pending_order.retain(|&t| t != trace_id);
        }
    }

    /// The committed spans, oldest first, plus the process name.
    pub fn snapshot(&self) -> (String, Vec<SpanRecord>) {
        let inner = self.lock();
        (inner.process.clone(), inner.ring.iter().cloned().collect())
    }

    /// Number of committed spans currently held.
    pub fn len(&self) -> usize {
        self.lock().ring.len()
    }

    /// True when no committed spans are held.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Spans evicted or rejected so far.
    pub fn dropped(&self) -> u64 {
        self.lock().dropped
    }

    /// Empties the ring and the speculative buffers (tests).
    pub fn clear(&self) {
        let mut inner = self.lock();
        inner.ring.clear();
        inner.pending.clear();
        inner.pending_order.clear();
        inner.dropped = 0;
    }

    /// The collector's contents as Chrome-trace-event JSON.
    pub fn export_json(&self) -> String {
        let (process, spans) = self.snapshot();
        render_trace_json(&process, &spans)
    }
}

fn push_ring(inner: &mut Inner, rec: SpanRecord) {
    if inner.ring.len() >= inner.capacity {
        inner.ring.pop_front();
        inner.dropped += 1;
    }
    inner.ring.push_back(rec);
}

/// The process-global collector every layer records into.
pub fn collector() -> &'static TraceCollector {
    static GLOBAL: OnceLock<TraceCollector> = OnceLock::new();
    GLOBAL.get_or_init(|| TraceCollector::new(DEFAULT_CAPACITY))
}

// --- recording helpers ----------------------------------------------

/// Records a finished span with a pre-allocated id into the global
/// collector. `start_us` comes from [`now_us`] at span start.
pub fn record_span(
    trace_id: u128,
    span_id: u64,
    parent_id: Option<u64>,
    name: &'static str,
    start_us: u64,
    dur: Duration,
) {
    collector().record(SpanRecord {
        trace_id,
        span_id,
        parent_id,
        name,
        start_us,
        dur_us: dur.as_micros() as u64,
    });
}

/// Records a finished child span under `parent`, allocating its id;
/// returns the new span's id.
pub fn record_child(
    parent: &TraceContext,
    name: &'static str,
    start_us: u64,
    dur: Duration,
) -> u64 {
    let id = next_span_id();
    record_span(
        parent.trace_id,
        id,
        Some(parent.span_id),
        name,
        start_us,
        dur,
    );
    id
}

// --- exporter -------------------------------------------------------

fn escape_json(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

/// Renders spans as a deterministic Chrome-trace-event document: one
/// `process_name` metadata event, then complete (`ph:"X"`) events
/// sorted by `(trace_id, start_us, span_id)`. Timestamps are UNIX
/// microseconds; `args` carries the hex trace/span/parent ids. The
/// output loads in Perfetto (ui.perfetto.dev) and `chrome://tracing`,
/// and parses with the strict server-side JSON reader.
pub fn render_trace_json(process: &str, spans: &[SpanRecord]) -> String {
    let mut order: Vec<&SpanRecord> = spans.iter().collect();
    order.sort_by_key(|s| (s.trace_id, s.start_us, s.span_id));
    let mut out = String::with_capacity(64 + 192 * order.len());
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    out.push_str(
        "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":1,\"tid\":1,\"args\":{\"name\":\"",
    );
    escape_json(process, &mut out);
    out.push_str("\"}}");
    for s in order {
        out.push_str(",{\"name\":\"");
        escape_json(s.name, &mut out);
        out.push_str("\",\"cat\":\"mgpart\",\"ph\":\"X\",\"ts\":");
        out.push_str(&s.start_us.to_string());
        out.push_str(",\"dur\":");
        out.push_str(&s.dur_us.to_string());
        out.push_str(",\"pid\":1,\"tid\":1,\"args\":{\"trace\":\"");
        out.push_str(&trace_id_hex(s.trace_id));
        out.push_str("\",\"span\":\"");
        out.push_str(&span_id_hex(s.span_id));
        out.push('"');
        if let Some(parent) = s.parent_id {
            out.push_str(",\"parent\":\"");
            out.push_str(&span_id_hex(parent));
            out.push('"');
        }
        out.push_str("}}");
    }
    out.push_str("]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(trace_id: u128, span_id: u64, parent: Option<u64>, start: u64) -> SpanRecord {
        SpanRecord {
            trace_id,
            span_id,
            parent_id: parent,
            name: "execute",
            start_us: start,
            dur_us: 5,
        }
    }

    #[test]
    fn ids_are_nonzero_and_distinct() {
        let a = next_span_id();
        let b = next_span_id();
        assert_ne!(a, 0);
        assert_ne!(a, b);
        assert_ne!(next_trace_id(), next_trace_id());
    }

    #[test]
    fn hex_roundtrip_is_strict() {
        let t = 0x0123_4567_89ab_cdef_0123_4567_89ab_cdefu128;
        assert_eq!(parse_trace_id(&trace_id_hex(t)), Some(t));
        let s = 0xdead_beef_0000_0001u64;
        assert_eq!(parse_span_id(&span_id_hex(s)), Some(s));
        assert_eq!(parse_trace_id("abc"), None); // wrong length
        assert_eq!(parse_span_id("ABCDEF0123456789"), None); // uppercase
        assert_eq!(parse_trace_id(&"g".repeat(32)), None); // not hex
    }

    #[test]
    fn child_context_links_to_parent() {
        let root = TraceContext::new_root();
        let child = root.child();
        assert_eq!(child.trace_id, root.trace_id);
        assert_eq!(child.parent_id, Some(root.span_id));
        assert_ne!(child.span_id, root.span_id);
    }

    #[test]
    fn thread_local_scope_nests_and_restores() {
        assert_eq!(current(), None);
        let a = TraceContext::new_root();
        let g1 = enter(a);
        assert_eq!(current(), Some(a));
        {
            let b = a.child();
            let _g2 = enter(b);
            assert_eq!(current(), Some(b));
        }
        assert_eq!(current(), Some(a));
        drop(g1);
        assert_eq!(current(), None);
    }

    #[test]
    fn ring_is_bounded_and_evicts_oldest() {
        let c = TraceCollector::new(3);
        for i in 0..5u64 {
            c.record(rec(7, i + 1, None, 100 + i));
        }
        let (_, spans) = c.snapshot();
        assert_eq!(spans.len(), 3);
        assert_eq!(spans[0].span_id, 3); // 1 and 2 evicted
        assert_eq!(c.dropped(), 2);
    }

    #[test]
    fn speculative_commit_keeps_and_discard_drops() {
        let c = TraceCollector::new(16);
        let kept = c.begin_speculative();
        let gone = c.begin_speculative();
        c.record(rec(kept.trace_id, 10, Some(kept.span_id), 1));
        c.record(rec(gone.trace_id, 11, Some(gone.span_id), 2));
        assert!(c.is_empty(), "speculative spans must not be visible yet");
        c.commit(kept.trace_id);
        c.discard(gone.trace_id);
        let (_, spans) = c.snapshot();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].trace_id, kept.trace_id);
    }

    #[test]
    fn export_is_deterministic_and_sorted() {
        let c = TraceCollector::new(16);
        c.set_process("router");
        c.record(rec(9, 2, Some(1), 200));
        c.record(rec(9, 1, None, 100));
        let a = c.export_json();
        assert_eq!(a, c.export_json());
        let first = a.find("\"ts\":100").unwrap();
        let second = a.find("\"ts\":200").unwrap();
        assert!(first < second, "events must sort by start time: {a}");
        assert!(a.contains("\"name\":\"router\""));
    }
}

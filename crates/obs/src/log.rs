//! Leveled, structured diagnostics: one JSON object per line on
//! **stderr**. Stdout belongs to protocol responses and stays
//! byte-deterministic; everything here is a side channel.
//!
//! The level comes from `--log-level` (via [`set_level`]) or the
//! `MGPART_LOG` environment variable (via [`init_from_env`]); the
//! default is `info`.

use std::io::Write;
use std::sync::atomic::{AtomicU8, Ordering};
use std::time::{SystemTime, UNIX_EPOCH};

/// Severity, most severe first. `--log-level error` shows only errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Unrecoverable or user-visible failures.
    Error = 1,
    /// Degraded but continuing (failover, probe flap).
    Warn = 2,
    /// Lifecycle milestones (listening, drained). The default.
    Info = 3,
    /// Span start/end, per-request detail.
    Debug = 4,
    /// Firehose.
    Trace = 5,
}

impl Level {
    fn as_str(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
            Level::Trace => "trace",
        }
    }
}

/// Parses a level name, case-insensitively.
pub fn parse_level(s: &str) -> Option<Level> {
    match s.to_ascii_lowercase().as_str() {
        "error" => Some(Level::Error),
        "warn" | "warning" => Some(Level::Warn),
        "info" => Some(Level::Info),
        "debug" => Some(Level::Debug),
        "trace" => Some(Level::Trace),
        _ => None,
    }
}

static LEVEL: AtomicU8 = AtomicU8::new(Level::Info as u8);

/// Sets the global log level.
pub fn set_level(level: Level) {
    LEVEL.store(level as u8, Ordering::Relaxed);
}

/// The current global log level.
pub fn level() -> Level {
    match LEVEL.load(Ordering::Relaxed) {
        1 => Level::Error,
        2 => Level::Warn,
        4 => Level::Debug,
        5 => Level::Trace,
        _ => Level::Info,
    }
}

/// Whether events at `at` would currently be emitted. Use to skip
/// building expensive field sets.
pub fn enabled(at: Level) -> bool {
    at <= level()
}

/// Applies `MGPART_LOG` if set and valid; silently keeps the default
/// otherwise.
pub fn init_from_env() {
    if let Ok(raw) = std::env::var("MGPART_LOG") {
        if let Some(l) = parse_level(&raw) {
            set_level(l);
        }
    }
}

/// A typed field value; `From` impls cover the common cases so call
/// sites read `("addr", addr.into())`.
#[derive(Debug, Clone)]
pub enum Value {
    /// A string (JSON-escaped on output).
    Str(String),
    /// An unsigned integer.
    U64(u64),
    /// A signed integer.
    I64(i64),
    /// A float.
    F64(f64),
    /// A boolean.
    Bool(bool),
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::Str(v)
    }
}
impl From<u64> for Value {
    fn from(v: u64) -> Value {
        Value::U64(v)
    }
}
impl From<u32> for Value {
    fn from(v: u32) -> Value {
        Value::U64(u64::from(v))
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Value {
        Value::U64(v as u64)
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Value {
        Value::I64(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::F64(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

/// Renders one event as a JSON line (without trailing newline).
/// Exposed for tests; use [`event`] to emit.
pub fn render_event(level: Level, name: &str, fields: &[(&str, Value)]) -> String {
    let ts_ms = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0);
    let mut line = String::with_capacity(64 + name.len());
    line.push_str("{\"ts_ms\":");
    line.push_str(&ts_ms.to_string());
    line.push_str(",\"level\":\"");
    line.push_str(level.as_str());
    line.push_str("\",\"event\":\"");
    escape_into(&mut line, name);
    line.push('"');
    for (key, value) in fields {
        line.push_str(",\"");
        escape_into(&mut line, key);
        line.push_str("\":");
        match value {
            Value::Str(s) => {
                line.push('"');
                escape_into(&mut line, s);
                line.push('"');
            }
            Value::U64(v) => line.push_str(&v.to_string()),
            Value::I64(v) => line.push_str(&v.to_string()),
            Value::F64(v) => {
                if v.is_finite() {
                    line.push_str(&format!("{v}"));
                } else {
                    line.push_str("null");
                }
            }
            Value::Bool(v) => line.push_str(if *v { "true" } else { "false" }),
        }
    }
    line.push('}');
    line
}

/// Emits one structured event on stderr if `level` is enabled.
pub fn event(level: Level, name: &str, fields: &[(&str, Value)]) {
    if !enabled(level) {
        return;
    }
    let mut line = render_event(level, name, fields);
    line.push('\n');
    // One write call per event keeps concurrent sessions' lines whole.
    let stderr = std::io::stderr();
    let _ = stderr.lock().write_all(line.as_bytes());
}

/// An `error`-level event.
pub fn error(name: &str, fields: &[(&str, Value)]) {
    event(Level::Error, name, fields);
}

/// A `warn`-level event.
pub fn warn(name: &str, fields: &[(&str, Value)]) {
    event(Level::Warn, name, fields);
}

/// An `info`-level event.
pub fn info(name: &str, fields: &[(&str, Value)]) {
    event(Level::Info, name, fields);
}

/// A `debug`-level event.
pub fn debug(name: &str, fields: &[(&str, Value)]) {
    event(Level::Debug, name, fields);
}

/// A `trace`-level event.
pub fn trace(name: &str, fields: &[(&str, Value)]) {
    event(Level::Trace, name, fields);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_order_and_parse() {
        assert!(Level::Error < Level::Trace);
        assert_eq!(parse_level("WARN"), Some(Level::Warn));
        assert_eq!(parse_level("warning"), Some(Level::Warn));
        assert_eq!(parse_level("nope"), None);
    }

    #[test]
    fn render_produces_one_json_object() {
        let line = render_event(
            Level::Info,
            "server_listening",
            &[
                ("addr", "127.0.0.1:7100".into()),
                ("threads", 4usize.into()),
                ("cached", true.into()),
                ("score", 0.5f64.into()),
            ],
        );
        assert!(line.starts_with("{\"ts_ms\":"));
        assert!(line.contains("\"level\":\"info\""));
        assert!(line.contains("\"event\":\"server_listening\""));
        assert!(line.contains("\"addr\":\"127.0.0.1:7100\""));
        assert!(line.contains("\"threads\":4"));
        assert!(line.contains("\"cached\":true"));
        assert!(line.contains("\"score\":0.5"));
        assert!(line.ends_with('}'));
        assert!(!line.contains('\n'));
    }

    #[test]
    fn strings_are_escaped() {
        let line = render_event(Level::Error, "e", &[("msg", "a\"b\\c\nd".into())]);
        assert!(line.contains("\"msg\":\"a\\\"b\\\\c\\nd\""));
    }
}

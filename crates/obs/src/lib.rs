//! `mg-obs` — observability primitives shared by every layer of the
//! mediumgrain stack.
//!
//! Three strictly separated channels keep the wire protocol's
//! byte-determinism contract intact:
//!
//! 1. **Metrics** ([`metrics`]): a process-global registry of counters,
//!    gauges and fixed-bucket histograms backed by `AtomicU64` cells.
//!    Handles are registered once and updated lock-free; the registry
//!    mutex is touched only at registration and render time.
//! 2. **Diagnostic log** ([`log`]): leveled, structured JSON lines on
//!    **stderr** — never stdout, which belongs to protocol responses.
//! 3. **Exposition** ([`expose`]): an out-of-band TCP endpoint serving a
//!    Prometheus-style text snapshot of the registry, plus the matching
//!    scraper and schema validator.
//!
//! [`span`] ties 1 and 2 together: phase timers record into the
//! `mgpart_phase_seconds` histogram (the paper's Fig. 5 phases), and
//! spans emit start/end events carrying session/request/shard ids.
//!
//! [`trace`] adds per-request distributed tracing on the same
//! out-of-band rules: propagated 128-bit trace contexts, a bounded
//! ring-buffer collector, and Perfetto-loadable JSON served on the
//! exposition endpoint's `/trace` route.

pub mod expose;
pub mod log;
pub mod metrics;
pub mod span;
pub mod trace;

pub use expose::{parse_schema, scrape, scrape_trace, validate_exposition, MetricsServer};
pub use log::{Level, Value};
pub use metrics::{registry, Counter, Gauge, Histogram, Registry};
pub use span::{phase, phase_stats, PhaseTimer, Span, PHASES, PHASE_BOUNDS};
pub use trace::{TraceCollector, TraceContext, WireTrace};

//! The metrics registry: counters, gauges and fixed-bucket histograms.
//!
//! Handles wrap `Arc<AtomicU64>` cells, so the hot path is a relaxed
//! atomic op; the registry's mutex is taken only when a metric is first
//! registered (or re-looked-up) and when the whole registry is rendered.
//! Names are `snake_case`; labels are `(key, value)` pairs rendered in
//! the order given (`backend=`, `shard=`, `phase=`, ...).

use std::collections::btree_map::Entry as MapEntry;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};

/// A monotonically increasing counter.
#[derive(Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: goes up and down, never below zero.
#[derive(Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Adds one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Subtracts one, saturating at zero.
    pub fn dec(&self) {
        let _ = self
            .0
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_sub(1))
            });
    }

    /// Sets the value outright.
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Shared cells of one histogram: per-bucket counts plus running
/// sum/count. Buckets use Prometheus `le` semantics — a value lands in
/// the first bucket whose upper bound it does not exceed; the final
/// implicit `+Inf` bucket catches overflow.
struct HistogramCells {
    /// Ascending upper bounds, in the observed unit (seconds here).
    bounds: Vec<f64>,
    /// `bounds.len() + 1` cells; the last one is the `+Inf` overflow.
    counts: Vec<AtomicU64>,
    /// Sum of observations in microseconds (fits u64 for ~584k years).
    sum_micros: AtomicU64,
    count: AtomicU64,
}

/// A fixed-bucket latency histogram (values in seconds).
#[derive(Clone)]
pub struct Histogram(Arc<HistogramCells>);

impl Histogram {
    /// Records one observation.
    pub fn observe(&self, value: f64) {
        let v = if value.is_finite() && value > 0.0 {
            value
        } else {
            0.0
        };
        let cells = &self.0;
        let idx = cells
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(cells.bounds.len());
        cells.counts[idx].fetch_add(1, Ordering::Relaxed);
        cells
            .sum_micros
            .fetch_add((v * 1e6).round() as u64, Ordering::Relaxed);
        cells.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations, in seconds.
    pub fn sum_seconds(&self) -> f64 {
        self.0.sum_micros.load(Ordering::Relaxed) as f64 / 1e6
    }

    /// Count in the bucket whose upper bound is `bounds[idx]`, or the
    /// `+Inf` overflow bucket for `idx == bounds.len()`.
    pub fn bucket_count(&self, idx: usize) -> u64 {
        self.0.counts[idx].load(Ordering::Relaxed)
    }
}

enum Data {
    Counter(Arc<AtomicU64>),
    Gauge(Arc<AtomicU64>),
    Histogram(Arc<HistogramCells>),
}

impl Data {
    fn kind(&self) -> &'static str {
        match self {
            Data::Counter(_) => "counter",
            Data::Gauge(_) => "gauge",
            Data::Histogram(_) => "histogram",
        }
    }
}

struct Entry {
    name: String,
    /// Rendered label pairs without braces: `shard="s0",op="ping"`.
    labels: String,
    data: Data,
}

/// A set of named metrics; usually the process-global [`registry()`].
#[derive(Default)]
pub struct Registry {
    entries: Mutex<BTreeMap<String, Entry>>,
}

fn render_labels(labels: &[(&str, &str)]) -> String {
    let mut out = String::new();
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(k);
        out.push_str("=\"");
        out.push_str(v);
        out.push('"');
    }
    out
}

impl Registry {
    /// An empty registry (tests; production code uses [`registry()`]).
    pub fn new() -> Registry {
        Registry::default()
    }

    fn lock(&self) -> MutexGuard<'_, BTreeMap<String, Entry>> {
        self.entries.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Gets or registers the counter `name{labels}`.
    ///
    /// Panics if the same series was registered as a different kind —
    /// that is a programming error, not a runtime condition.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        let rendered = render_labels(labels);
        let key = format!("{name}{{{rendered}}}");
        match self.lock().entry(key) {
            MapEntry::Occupied(o) => match &o.get().data {
                Data::Counter(c) => Counter(c.clone()),
                other => panic!("metric {name} is a {}, not a counter", other.kind()),
            },
            MapEntry::Vacant(v) => {
                let cell = Arc::new(AtomicU64::new(0));
                v.insert(Entry {
                    name: name.to_string(),
                    labels: rendered,
                    data: Data::Counter(cell.clone()),
                });
                Counter(cell)
            }
        }
    }

    /// Gets or registers the gauge `name{labels}`.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        let rendered = render_labels(labels);
        let key = format!("{name}{{{rendered}}}");
        match self.lock().entry(key) {
            MapEntry::Occupied(o) => match &o.get().data {
                Data::Gauge(g) => Gauge(g.clone()),
                other => panic!("metric {name} is a {}, not a gauge", other.kind()),
            },
            MapEntry::Vacant(v) => {
                let cell = Arc::new(AtomicU64::new(0));
                v.insert(Entry {
                    name: name.to_string(),
                    labels: rendered,
                    data: Data::Gauge(cell.clone()),
                });
                Gauge(cell)
            }
        }
    }

    /// Gets or registers the histogram `name{labels}` with the given
    /// ascending upper bounds (seconds). Bounds are fixed at first
    /// registration; later lookups return the existing cells.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)], bounds: &[f64]) -> Histogram {
        let rendered = render_labels(labels);
        let key = format!("{name}{{{rendered}}}");
        match self.lock().entry(key) {
            MapEntry::Occupied(o) => match &o.get().data {
                Data::Histogram(h) => Histogram(h.clone()),
                other => panic!("metric {name} is a {}, not a histogram", other.kind()),
            },
            MapEntry::Vacant(v) => {
                let cells = Arc::new(HistogramCells {
                    bounds: bounds.to_vec(),
                    counts: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
                    sum_micros: AtomicU64::new(0),
                    count: AtomicU64::new(0),
                });
                v.insert(Entry {
                    name: name.to_string(),
                    labels: rendered,
                    data: Data::Histogram(cells.clone()),
                });
                Histogram(cells)
            }
        }
    }

    /// Renders the whole registry as Prometheus text exposition format.
    /// Output order is deterministic (sorted by series key); each family
    /// gets one `# TYPE` line.
    pub fn render(&self) -> String {
        let entries = self.lock();
        let mut out = String::new();
        let mut last_family = String::new();
        for entry in entries.values() {
            if entry.name != last_family {
                out.push_str("# TYPE ");
                out.push_str(&entry.name);
                out.push(' ');
                out.push_str(entry.data.kind());
                out.push('\n');
                last_family.clone_from(&entry.name);
            }
            let series = |suffix: &str, extra: Option<String>| -> String {
                let mut inner = entry.labels.clone();
                if let Some(extra) = extra {
                    if !inner.is_empty() {
                        inner.push(',');
                    }
                    inner.push_str(&extra);
                }
                if inner.is_empty() {
                    format!("{}{}", entry.name, suffix)
                } else {
                    format!("{}{}{{{}}}", entry.name, suffix, inner)
                }
            };
            match &entry.data {
                Data::Counter(c) => {
                    let v = c.load(Ordering::Relaxed);
                    out.push_str(&format!("{} {v}\n", series("", None)));
                }
                Data::Gauge(g) => {
                    let v = g.load(Ordering::Relaxed);
                    out.push_str(&format!("{} {v}\n", series("", None)));
                }
                Data::Histogram(h) => {
                    let mut cumulative = 0u64;
                    for (i, bound) in h.bounds.iter().enumerate() {
                        cumulative += h.counts[i].load(Ordering::Relaxed);
                        let le = Some(format!("le=\"{bound}\""));
                        out.push_str(&format!("{} {cumulative}\n", series("_bucket", le)));
                    }
                    cumulative += h.counts[h.bounds.len()].load(Ordering::Relaxed);
                    let le = Some("le=\"+Inf\"".to_string());
                    out.push_str(&format!("{} {cumulative}\n", series("_bucket", le)));
                    let sum = h.sum_micros.load(Ordering::Relaxed) as f64 / 1e6;
                    out.push_str(&format!("{} {sum:.6}\n", series("_sum", None)));
                    let count = h.count.load(Ordering::Relaxed);
                    out.push_str(&format!("{} {count}\n", series("_count", None)));
                }
            }
        }
        out
    }
}

/// The process-global registry every layer records into.
pub fn registry() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_roundtrip() {
        let r = Registry::new();
        let c = r.counter("t_requests_total", &[]);
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let g = r.gauge("t_sessions_live", &[]);
        g.inc();
        g.inc();
        g.dec();
        assert_eq!(g.get(), 1);
        g.dec();
        g.dec(); // saturates, no underflow
        assert_eq!(g.get(), 0);
        g.set(7);
        assert_eq!(g.get(), 7);
    }

    #[test]
    fn labeled_series_are_distinct() {
        let r = Registry::new();
        let a = r.counter("t_dispatch_total", &[("shard", "s0")]);
        let b = r.counter("t_dispatch_total", &[("shard", "s1")]);
        a.inc();
        a.inc();
        b.inc();
        assert_eq!(a.get(), 2);
        assert_eq!(b.get(), 1);
        // Re-lookup returns the same cell.
        assert_eq!(r.counter("t_dispatch_total", &[("shard", "s0")]).get(), 2);
    }

    #[test]
    fn histogram_boundary_value_lands_in_its_bucket() {
        // `le` semantics: a value exactly on a bucket's upper bound
        // belongs to that bucket, not the next one up.
        let r = Registry::new();
        let h = r.histogram("t_lat_seconds", &[], &[0.001, 0.01, 0.1]);
        h.observe(0.001); // exactly on the first bound
        assert_eq!(h.bucket_count(0), 1);
        assert_eq!(h.bucket_count(1), 0);
        h.observe(0.0100001); // just past the second bound
        assert_eq!(h.bucket_count(1), 0);
        assert_eq!(h.bucket_count(2), 1);
        assert_eq!(h.count(), 2);
    }

    #[test]
    fn histogram_overflow_bucket_catches_large_values() {
        let r = Registry::new();
        let h = r.histogram("t_big_seconds", &[], &[0.001, 0.01]);
        h.observe(5.0);
        h.observe(1e9);
        assert_eq!(h.bucket_count(2), 2); // bounds.len() == overflow index
        assert_eq!(h.bucket_count(0), 0);
        assert_eq!(h.count(), 2);
        assert!(h.sum_seconds() > 1e8);
    }

    #[test]
    fn histogram_rejects_nonfinite_and_negative() {
        let r = Registry::new();
        let h = r.histogram("t_odd_seconds", &[], &[1.0]);
        h.observe(f64::NAN);
        h.observe(-3.0);
        // Both clamp to 0.0 and land in the first bucket.
        assert_eq!(h.bucket_count(0), 2);
        assert_eq!(h.sum_seconds(), 0.0);
    }

    #[test]
    fn render_is_deterministic_prometheus_text() {
        let r = Registry::new();
        r.counter("t_b_total", &[("shard", "s1")]).add(3);
        r.counter("t_b_total", &[("shard", "s0")]).add(2);
        r.gauge("t_a_live", &[]).set(1);
        let h = r.histogram("t_c_seconds", &[("phase", "fm")], &[0.01, 1.0]);
        h.observe(0.005);
        h.observe(0.5);
        let text = r.render();
        let expected = "# TYPE t_a_live gauge\n\
                        t_a_live 1\n\
                        # TYPE t_b_total counter\n\
                        t_b_total{shard=\"s0\"} 2\n\
                        t_b_total{shard=\"s1\"} 3\n\
                        # TYPE t_c_seconds histogram\n\
                        t_c_seconds_bucket{phase=\"fm\",le=\"0.01\"} 1\n\
                        t_c_seconds_bucket{phase=\"fm\",le=\"1\"} 2\n\
                        t_c_seconds_bucket{phase=\"fm\",le=\"+Inf\"} 2\n\
                        t_c_seconds_sum{phase=\"fm\"} 0.505000\n\
                        t_c_seconds_count{phase=\"fm\"} 2\n";
        assert_eq!(text, expected);
        assert_eq!(text, r.render());
    }

    #[test]
    #[should_panic(expected = "not a gauge")]
    fn kind_mismatch_panics() {
        let r = Registry::new();
        r.counter("t_kind_clash", &[]);
        r.gauge("t_kind_clash", &[]);
    }
}

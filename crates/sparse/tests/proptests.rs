//! Property-based tests for the sparse substrate: representation
//! invariants, metric identities, and the SpMV simulator's agreement with
//! the closed-form volume.

use mg_sparse::io::{read_matrix_market, write_matrix_market};
use mg_sparse::partition::communication_volume_reference;
use mg_sparse::spmv::{serial_spmv, simulate_spmv};
use mg_sparse::{
    bsp_cost, communication_volume, load_imbalance, max_part_size, Coo, Csc, Csr, Idx,
    NonzeroPartition,
};
use proptest::prelude::*;

/// Strategy: a small random matrix (dims 1..=16, up to 48 candidate
/// entries, duplicates removed by the constructor).
fn arb_coo() -> impl Strategy<Value = Coo> {
    mg_test_support::strategies::arb_coo(16, 0, 47)
}

/// Strategy: a matrix plus a p-way partition of its nonzeros.
fn arb_partitioned() -> impl Strategy<Value = (Coo, NonzeroPartition)> {
    mg_test_support::strategies::arb_partitioned(16, 47, 5)
}

proptest! {
    #[test]
    fn transpose_is_involutive(a in arb_coo()) {
        prop_assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn csr_roundtrips_entries(a in arb_coo()) {
        let csr = Csr::from_coo(&a);
        let back: Vec<(Idx, Idx)> = csr.iter().map(|(i, j, _)| (i, j)).collect();
        prop_assert_eq!(back.as_slice(), a.entries());
    }

    #[test]
    fn csc_agrees_with_transpose_csr(a in arb_coo()) {
        let csc = Csc::from_coo(&a);
        let t = a.transpose();
        let tcsr = Csr::from_coo(&t);
        for j in 0..a.cols() {
            prop_assert_eq!(csc.col(j), tcsr.row(j));
        }
    }

    #[test]
    fn row_and_col_counts_sum_to_nnz(a in arb_coo()) {
        let rc: u64 = a.row_counts().iter().map(|&c| c as u64).sum();
        let cc: u64 = a.col_counts().iter().map(|&c| c as u64).sum();
        prop_assert_eq!(rc, a.nnz() as u64);
        prop_assert_eq!(cc, a.nnz() as u64);
    }

    #[test]
    fn matrix_market_roundtrip(a in arb_coo()) {
        let mut buf = Vec::new();
        write_matrix_market(&a, &mut buf).expect("write");
        let b = read_matrix_market(buf.as_slice()).expect("read");
        prop_assert_eq!(a, b);
    }

    /// The O(N) stamped volume computation agrees with the brute-force
    /// per-line set oracle.
    #[test]
    fn volume_matches_reference((a, p) in arb_partitioned()) {
        prop_assert_eq!(
            communication_volume(&a, &p),
            communication_volume_reference(&a, &p)
        );
    }

    /// The SpMV simulator transfers exactly `V` words and computes the
    /// right answer, for any matrix and partition.
    #[test]
    fn simulator_counts_exactly_the_volume((a, p) in arb_partitioned()) {
        let report = simulate_spmv(&a, &p, None);
        prop_assert_eq!(report.total_words(), communication_volume(&a, &p));
        prop_assert_eq!(report.output, serial_spmv(&a));
    }

    /// Per-phase h-relations can never exceed the phase's total word count,
    /// and their sum is bounded by the volume.
    #[test]
    fn bsp_cost_is_bounded_by_volume((a, p) in arb_partitioned()) {
        let cost = bsp_cost(&a, &p);
        prop_assert!(cost.total() <= communication_volume(&a, &p));
    }

    /// Volume is invariant under part relabeling (swap for bipartitions).
    #[test]
    fn volume_invariant_under_swap(a in arb_coo(), flip in proptest::collection::vec(0u32..2, 0..48)) {
        let nnz = a.nnz();
        if flip.len() >= nnz {
            let parts: Vec<Idx> = flip[..nnz].to_vec();
            let p = NonzeroPartition::new(2, parts).expect("two parts");
            prop_assert_eq!(
                communication_volume(&a, &p),
                communication_volume(&a, &p.swapped())
            );
        }
    }

    #[test]
    fn imbalance_and_max_part_are_consistent((_, p) in arb_partitioned()) {
        let n = p.parts().len();
        if n > 0 {
            let expected =
                max_part_size(&p) as f64 * p.num_parts() as f64 / n as f64 - 1.0;
            prop_assert!((load_imbalance(&p) - expected).abs() < 1e-12);
        }
    }

    /// Full representation round-trip: a COO rebuilt from its CSR view is
    /// the identical canonical matrix, and the CSR structure is internally
    /// consistent (monotone row spans covering exactly the nonzeros, in the
    /// canonical row-major order).
    #[test]
    fn coo_csr_coo_roundtrip(a in arb_coo()) {
        let csr = Csr::from_coo(&a);
        prop_assert_eq!(csr.rows(), a.rows());
        prop_assert_eq!(csr.cols(), a.cols());
        prop_assert_eq!(csr.nnz(), a.nnz());
        let mut covered = 0usize;
        for i in 0..a.rows() {
            let span = csr.row_nonzero_ids(i);
            prop_assert_eq!(span.start, covered, "row {} span must be contiguous", i);
            prop_assert_eq!(span.len(), csr.row(i).len());
            covered = span.end;
        }
        prop_assert_eq!(covered, a.nnz());
        let back = Coo::new(
            csr.rows(),
            csr.cols(),
            csr.iter().map(|(i, j, _)| (i, j)).collect(),
        )
        .expect("CSR indices are in bounds");
        prop_assert_eq!(back, a);
    }

    /// The CSC view round-trips through the same canonical COO.
    #[test]
    fn coo_csc_coo_roundtrip(a in arb_coo()) {
        let csc = Csc::from_coo(&a);
        prop_assert_eq!(csc.nnz(), a.nnz());
        let mut entries = Vec::with_capacity(a.nnz());
        for j in 0..a.cols() {
            for &i in csc.col(j) {
                entries.push((i, j));
            }
        }
        let back = Coo::new(csc.rows(), csc.cols(), entries).expect("CSC indices are in bounds");
        prop_assert_eq!(back, a);
    }

    /// CSC nonzero ids are a permutation of 0..nnz that agrees with the
    /// coordinates stored in the COO (the id is the row-major position).
    #[test]
    fn csc_nonzero_ids_are_consistent(a in arb_coo()) {
        let csc = Csc::from_coo(&a);
        let mut seen = vec![false; a.nnz()];
        for j in 0..a.cols() {
            for (&i, &k) in csc.col(j).iter().zip(csc.col_nonzero_ids(j)) {
                prop_assert_eq!(a.entry(k as usize), (i, j));
                prop_assert!(!seen[k as usize], "nonzero id {} appears twice", k);
                seen[k as usize] = true;
            }
        }
        prop_assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn select_preserves_coordinates(a in arb_coo(), mask in proptest::collection::vec(any::<bool>(), 0..48)) {
        let ids: Vec<Idx> = (0..a.nnz())
            .filter(|&k| mask.get(k).copied().unwrap_or(false))
            .map(|k| k as Idx)
            .collect();
        let sub = a.select(&ids);
        prop_assert_eq!(sub.nnz(), ids.len());
        for &k in &ids {
            let (i, j) = a.entry(k as usize);
            prop_assert!(sub.contains(i, j));
        }
    }
}

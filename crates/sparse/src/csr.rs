//! Compressed sparse row / column views.
//!
//! [`Csr`] compresses a [`Coo`] into row pointers plus column indices, the
//! access pattern model builders and metrics need ("give me the nonzeros of
//! row i" in `O(nzr(i))`). [`Csc`] is the same structure oriented by columns
//! and additionally records, for each stored entry, the *nonzero id* in the
//! canonical COO order, so column scans can refer back to partition arrays.

use crate::{Coo, Idx};

/// Compressed sparse row pattern.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Csr {
    rows: Idx,
    cols: Idx,
    /// `row_ptr[i]..row_ptr[i+1]` indexes `col_idx` for row `i`.
    row_ptr: Vec<Idx>,
    col_idx: Vec<Idx>,
}

impl Csr {
    /// Compresses a canonical COO. `O(N + m)`; entry `k` of the COO becomes
    /// position `k` of `col_idx` (row-major canonical order is preserved).
    pub fn from_coo(a: &Coo) -> Self {
        let m = a.rows() as usize;
        let mut row_ptr = vec![0 as Idx; m + 1];
        for &(i, _) in a.entries() {
            row_ptr[i as usize + 1] += 1;
        }
        for i in 0..m {
            row_ptr[i + 1] += row_ptr[i];
        }
        let col_idx = a.entries().iter().map(|&(_, j)| j).collect();
        Csr {
            rows: a.rows(),
            cols: a.cols(),
            row_ptr,
            col_idx,
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> Idx {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> Idx {
        self.cols
    }

    /// Number of nonzeros.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.col_idx.len()
    }

    /// Column indices of row `i`, in increasing order.
    #[inline]
    pub fn row(&self, i: Idx) -> &[Idx] {
        let lo = self.row_ptr[i as usize] as usize;
        let hi = self.row_ptr[i as usize + 1] as usize;
        &self.col_idx[lo..hi]
    }

    /// The range of nonzero ids (canonical COO order) covered by row `i`.
    #[inline]
    pub fn row_nonzero_ids(&self, i: Idx) -> std::ops::Range<usize> {
        self.row_ptr[i as usize] as usize..self.row_ptr[i as usize + 1] as usize
    }

    /// Number of nonzeros in row `i`.
    #[inline]
    pub fn row_len(&self, i: Idx) -> Idx {
        self.row_ptr[i as usize + 1] - self.row_ptr[i as usize]
    }

    /// Iterates `(row, col, nonzero_id)` in canonical order.
    pub fn iter(&self) -> impl Iterator<Item = (Idx, Idx, usize)> + '_ {
        (0..self.rows).flat_map(move |i| {
            self.row_nonzero_ids(i)
                .map(move |k| (i, self.col_idx[k], k))
        })
    }
}

/// Compressed sparse column pattern, with back-references to canonical
/// nonzero ids.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Csc {
    rows: Idx,
    cols: Idx,
    col_ptr: Vec<Idx>,
    row_idx: Vec<Idx>,
    /// `nonzero_id[r]` is the canonical COO id of the entry stored at `r`.
    nonzero_id: Vec<Idx>,
}

impl Csc {
    /// Compresses a canonical COO by columns. `O(N + n)` counting sort.
    pub fn from_coo(a: &Coo) -> Self {
        let n = a.cols() as usize;
        let mut col_ptr = vec![0 as Idx; n + 1];
        for &(_, j) in a.entries() {
            col_ptr[j as usize + 1] += 1;
        }
        for j in 0..n {
            col_ptr[j + 1] += col_ptr[j];
        }
        let mut row_idx = vec![0 as Idx; a.nnz()];
        let mut nonzero_id = vec![0 as Idx; a.nnz()];
        let mut next = col_ptr.clone();
        for (k, &(i, j)) in a.entries().iter().enumerate() {
            let slot = next[j as usize] as usize;
            row_idx[slot] = i;
            nonzero_id[slot] = k as Idx;
            next[j as usize] += 1;
        }
        Csc {
            rows: a.rows(),
            cols: a.cols(),
            col_ptr,
            row_idx,
            nonzero_id,
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> Idx {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> Idx {
        self.cols
    }

    /// Number of nonzeros.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.row_idx.len()
    }

    /// Row indices of column `j`, in increasing order.
    #[inline]
    pub fn col(&self, j: Idx) -> &[Idx] {
        let lo = self.col_ptr[j as usize] as usize;
        let hi = self.col_ptr[j as usize + 1] as usize;
        &self.row_idx[lo..hi]
    }

    /// Canonical nonzero ids of the entries in column `j`, aligned with
    /// [`Csc::col`].
    #[inline]
    pub fn col_nonzero_ids(&self, j: Idx) -> &[Idx] {
        let lo = self.col_ptr[j as usize] as usize;
        let hi = self.col_ptr[j as usize + 1] as usize;
        &self.nonzero_id[lo..hi]
    }

    /// Number of nonzeros in column `j`.
    #[inline]
    pub fn col_len(&self, j: Idx) -> Idx {
        self.col_ptr[j as usize + 1] - self.col_ptr[j as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Coo;

    fn small() -> Coo {
        Coo::new(3, 4, vec![(0, 0), (0, 2), (1, 1), (2, 0), (2, 3)]).unwrap()
    }

    #[test]
    fn csr_rows_match_coo() {
        let a = small();
        let csr = Csr::from_coo(&a);
        assert_eq!(csr.row(0), &[0, 2]);
        assert_eq!(csr.row(1), &[1]);
        assert_eq!(csr.row(2), &[0, 3]);
        assert_eq!(csr.row_len(1), 1);
        assert_eq!(csr.nnz(), 5);
    }

    #[test]
    fn csr_iter_reproduces_canonical_order() {
        let a = small();
        let csr = Csr::from_coo(&a);
        let triples: Vec<(Idx, Idx)> = csr.iter().map(|(i, j, _)| (i, j)).collect();
        assert_eq!(triples, a.entries());
        let ids: Vec<usize> = csr.iter().map(|(_, _, k)| k).collect();
        assert_eq!(ids, (0..a.nnz()).collect::<Vec<_>>());
    }

    #[test]
    fn csc_cols_match_transpose() {
        let a = small();
        let csc = Csc::from_coo(&a);
        assert_eq!(csc.col(0), &[0, 2]);
        assert_eq!(csc.col(1), &[1]);
        assert_eq!(csc.col(2), &[0]);
        assert_eq!(csc.col(3), &[2]);
    }

    #[test]
    fn csc_nonzero_ids_point_back() {
        let a = small();
        let csc = Csc::from_coo(&a);
        for j in 0..a.cols() {
            for (&i, &k) in csc.col(j).iter().zip(csc.col_nonzero_ids(j)) {
                assert_eq!(a.entry(k as usize), (i, j));
            }
        }
    }

    #[test]
    fn empty_rows_and_cols_are_empty_slices() {
        let a = Coo::new(4, 4, vec![(0, 0)]).unwrap();
        let csr = Csr::from_coo(&a);
        let csc = Csc::from_coo(&a);
        for i in 1..4 {
            assert!(csr.row(i).is_empty());
            assert!(csc.col(i).is_empty());
        }
    }
}

//! Canonical pattern-only triplet (COO) representation.
//!
//! [`Coo`] is the exchange format of the whole workspace: generators produce
//! it, models consume it, and nonzero partitions are index-aligned with its
//! entry order. The representation is kept *canonical* — entries sorted
//! row-major (row, then column) with duplicates removed — so that an entry's
//! position in [`Coo::entries`] is a stable nonzero id.

use crate::{Idx, SparseError};

/// A pattern-only sparse matrix in canonical (row-major sorted, deduplicated)
/// coordinate form.
///
/// The `k`-th entry of [`Coo::entries`] is "nonzero `k`" everywhere else in
/// the workspace: a [`crate::partition::NonzeroPartition`] assigns part
/// numbers by this index, and the fine-grain hypergraph model numbers its
/// vertices by it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Coo {
    rows: Idx,
    cols: Idx,
    /// Sorted row-major; `entries[k] = (i, j)` is the k-th nonzero.
    entries: Vec<(Idx, Idx)>,
}

impl Coo {
    /// Builds a canonical matrix from arbitrary-order triplets.
    ///
    /// Sorts row-major and removes exact duplicates. Fails if any coordinate
    /// is out of bounds or if the number of entries does not fit in [`Idx`].
    pub fn new(rows: Idx, cols: Idx, mut entries: Vec<(Idx, Idx)>) -> Result<Self, SparseError> {
        if entries.len() >= Idx::MAX as usize {
            return Err(SparseError::TooManyNonzeros(entries.len()));
        }
        for &(i, j) in &entries {
            if i >= rows {
                return Err(SparseError::RowOutOfBounds(i, rows));
            }
            if j >= cols {
                return Err(SparseError::ColOutOfBounds(j, cols));
            }
        }
        entries.sort_unstable();
        entries.dedup();
        Ok(Coo {
            rows,
            cols,
            entries,
        })
    }

    /// Builds a matrix from entries that are already sorted row-major and
    /// unique. Used by generators and format conversions on hot paths.
    ///
    /// Debug builds verify the canonical-form invariants.
    pub fn from_sorted_unchecked(rows: Idx, cols: Idx, entries: Vec<(Idx, Idx)>) -> Self {
        debug_assert!(entries.windows(2).all(|w| w[0] < w[1]), "not sorted/unique");
        debug_assert!(entries.iter().all(|&(i, j)| i < rows && j < cols));
        debug_assert!(entries.len() < Idx::MAX as usize);
        Coo {
            rows,
            cols,
            entries,
        }
    }

    /// An empty `rows × cols` matrix.
    pub fn empty(rows: Idx, cols: Idx) -> Self {
        Coo {
            rows,
            cols,
            entries: Vec::new(),
        }
    }

    /// Number of rows `m`.
    #[inline]
    pub fn rows(&self) -> Idx {
        self.rows
    }

    /// Number of columns `n`.
    #[inline]
    pub fn cols(&self) -> Idx {
        self.cols
    }

    /// Number of stored nonzeros `N`.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.entries.len()
    }

    /// `true` if the matrix stores no nonzeros.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// `true` if `rows == cols`.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// The canonical entry slice; index = nonzero id.
    #[inline]
    pub fn entries(&self) -> &[(Idx, Idx)] {
        &self.entries
    }

    /// The `k`-th nonzero's coordinates.
    #[inline]
    pub fn entry(&self, k: usize) -> (Idx, Idx) {
        self.entries[k]
    }

    /// Iterates `(row, col)` pairs in canonical order.
    pub fn iter(&self) -> impl Iterator<Item = (Idx, Idx)> + '_ {
        self.entries.iter().copied()
    }

    /// `true` if `(i, j)` is a stored nonzero (binary search).
    pub fn contains(&self, i: Idx, j: Idx) -> bool {
        self.entries.binary_search(&(i, j)).is_ok()
    }

    /// The nonzero id of `(i, j)`, if stored.
    pub fn find(&self, i: Idx, j: Idx) -> Option<usize> {
        self.entries.binary_search(&(i, j)).ok()
    }

    /// Nonzero counts per row (`nzr` in the paper's Algorithm 1).
    pub fn row_counts(&self) -> Vec<Idx> {
        let mut counts = vec![0 as Idx; self.rows as usize];
        for &(i, _) in &self.entries {
            counts[i as usize] += 1;
        }
        counts
    }

    /// Nonzero counts per column (`nzc` in the paper's Algorithm 1).
    pub fn col_counts(&self) -> Vec<Idx> {
        let mut counts = vec![0 as Idx; self.cols as usize];
        for &(_, j) in &self.entries {
            counts[j as usize] += 1;
        }
        counts
    }

    /// The transpose, in canonical form.
    pub fn transpose(&self) -> Coo {
        let mut entries: Vec<(Idx, Idx)> = self.entries.iter().map(|&(i, j)| (j, i)).collect();
        entries.sort_unstable();
        Coo {
            rows: self.cols,
            cols: self.rows,
            entries,
        }
    }

    /// A permutation of nonzero ids that orders entries column-major,
    /// computed by a counting sort — `O(N + n)`.
    ///
    /// `perm[r]` is the nonzero id of the r-th entry in column-major order.
    /// Used by metrics that scan columns without materialising a transpose.
    pub fn column_major_order(&self) -> Vec<Idx> {
        let n = self.cols as usize;
        let mut start = vec![0 as Idx; n + 1];
        for &(_, j) in &self.entries {
            start[j as usize + 1] += 1;
        }
        for j in 0..n {
            start[j + 1] += start[j];
        }
        let mut perm = vec![0 as Idx; self.entries.len()];
        let mut next = start;
        for (k, &(_, j)) in self.entries.iter().enumerate() {
            let slot = next[j as usize];
            perm[slot as usize] = k as Idx;
            next[j as usize] += 1;
        }
        perm
    }

    /// Extracts the submatrix formed by the given nonzero ids, keeping the
    /// original dimensions and global coordinates.
    ///
    /// This is how recursive bisection re-partitions one side of a split:
    /// the sub-problem is "these nonzeros of A", not a re-indexed matrix.
    pub fn select(&self, nonzero_ids: &[Idx]) -> Coo {
        let mut entries: Vec<(Idx, Idx)> = nonzero_ids
            .iter()
            .map(|&k| self.entries[k as usize])
            .collect();
        entries.sort_unstable();
        entries.dedup();
        Coo {
            rows: self.rows,
            cols: self.cols,
            entries,
        }
    }

    /// `true` if the nonzero pattern is structurally symmetric
    /// (requires a square matrix; the diagonal is irrelevant).
    pub fn is_pattern_symmetric(&self) -> bool {
        if !self.is_square() {
            return false;
        }
        self.entries
            .iter()
            .all(|&(i, j)| i == j || self.contains(j, i))
    }

    /// Makes the pattern symmetric by adding the transpose of every
    /// off-diagonal entry. Requires a square matrix.
    pub fn symmetrized(&self) -> Coo {
        assert!(self.is_square(), "symmetrized() requires a square matrix");
        let mut entries = self.entries.clone();
        entries.extend(self.entries.iter().map(|&(i, j)| (j, i)));
        entries.sort_unstable();
        entries.dedup();
        Coo {
            rows: self.rows,
            cols: self.cols,
            entries,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Coo {
        // 3x4:
        //  x . x .
        //  . x . .
        //  x . . x
        Coo::new(3, 4, vec![(2, 3), (0, 0), (1, 1), (0, 2), (2, 0)]).unwrap()
    }

    #[test]
    fn canonicalizes_order_and_duplicates() {
        let a = Coo::new(2, 2, vec![(1, 1), (0, 0), (1, 1), (0, 0)]).unwrap();
        assert_eq!(a.entries(), &[(0, 0), (1, 1)]);
        assert_eq!(a.nnz(), 2);
    }

    #[test]
    fn rejects_out_of_bounds() {
        assert_eq!(
            Coo::new(2, 2, vec![(2, 0)]),
            Err(SparseError::RowOutOfBounds(2, 2))
        );
        assert_eq!(
            Coo::new(2, 2, vec![(0, 5)]),
            Err(SparseError::ColOutOfBounds(5, 2))
        );
    }

    #[test]
    fn counts_match_entries() {
        let a = small();
        assert_eq!(a.row_counts(), vec![2, 1, 2]);
        assert_eq!(a.col_counts(), vec![2, 1, 1, 1]);
        assert_eq!(a.nnz(), 5);
    }

    #[test]
    fn transpose_involutes() {
        let a = small();
        let t = a.transpose();
        assert_eq!(t.rows(), 4);
        assert_eq!(t.cols(), 3);
        assert!(t.contains(3, 2));
        assert_eq!(t.transpose(), a);
    }

    #[test]
    fn column_major_order_visits_columns_in_order() {
        let a = small();
        let perm = a.column_major_order();
        let cols: Vec<Idx> = perm.iter().map(|&k| a.entry(k as usize).1).collect();
        let mut sorted = cols.clone();
        sorted.sort_unstable();
        assert_eq!(cols, sorted);
        // All ids present exactly once.
        let mut ids: Vec<Idx> = perm.clone();
        ids.sort_unstable();
        assert_eq!(ids, (0..a.nnz() as Idx).collect::<Vec<_>>());
    }

    #[test]
    fn select_keeps_global_coordinates() {
        let a = small();
        let sub = a.select(&[0, 4]);
        assert_eq!(sub.rows(), 3);
        assert_eq!(sub.cols(), 4);
        assert_eq!(sub.entries(), &[(0, 0), (2, 3)]);
    }

    #[test]
    fn symmetry_detection() {
        let sym = Coo::new(3, 3, vec![(0, 1), (1, 0), (2, 2)]).unwrap();
        assert!(sym.is_pattern_symmetric());
        let asym = Coo::new(3, 3, vec![(0, 1), (2, 2)]).unwrap();
        assert!(!asym.is_pattern_symmetric());
        assert!(asym.symmetrized().is_pattern_symmetric());
        let rect = Coo::new(2, 3, vec![(0, 1)]).unwrap();
        assert!(!rect.is_pattern_symmetric());
    }

    #[test]
    fn empty_matrix() {
        let e = Coo::empty(5, 7);
        assert_eq!(e.nnz(), 0);
        assert!(e.is_empty());
        assert_eq!(e.row_counts(), vec![0; 5]);
        assert_eq!(e.col_counts(), vec![0; 7]);
        assert_eq!(e.transpose().rows(), 7);
    }
}

//! A message-counting simulator of parallel sparse matrix–vector
//! multiplication.
//!
//! The paper's cost model (eqns (2)–(3)) is a *closed form* for the words
//! communicated by the four-step parallel SpMV of §I (fan-out, local
//! multiply, fan-in, summation). This module executes those four steps
//! explicitly for a partitioned matrix, counting every transferred word and
//! producing the actual output vector, so tests can assert that
//!
//! * the counted words equal [`crate::partition::communication_volume`], and
//! * the distributed result equals a serial SpMV bit-for-bit.
//!
//! Matrix values are synthesised as small integers (exactly representable in
//! `f64`), which makes floating-point summation order-independent and the
//! equality check exact.

use crate::bsp::{distribute_vectors, VectorDistribution};
use crate::partition::NonzeroPartition;
use crate::{Coo, Idx};

/// Deterministic value for nonzero `(i, j)`: a small positive integer, so
/// sums of millions of terms stay exactly representable in `f64`.
#[inline]
pub fn synthetic_value(i: Idx, j: Idx) -> f64 {
    ((i as u64 * 31 + j as u64 * 17) % 97 + 1) as f64
}

/// Deterministic input-vector entry `v_j`.
#[inline]
pub fn synthetic_input(j: Idx) -> f64 {
    ((j as u64 * 7) % 13 + 1) as f64
}

/// Outcome of a simulated parallel SpMV.
#[derive(Debug, Clone, PartialEq)]
pub struct SpmvReport {
    /// Words moved in the fan-out phase (input-vector entries).
    pub fanout_words: u64,
    /// Words moved in the fan-in phase (partial sums).
    pub fanin_words: u64,
    /// Per-part words sent during fan-out.
    pub fanout_send: Vec<u64>,
    /// Per-part words received during fan-out.
    pub fanout_recv: Vec<u64>,
    /// Per-part words sent during fan-in.
    pub fanin_send: Vec<u64>,
    /// Per-part words received during fan-in.
    pub fanin_recv: Vec<u64>,
    /// The assembled output vector `u = A·v`.
    pub output: Vec<f64>,
    /// Per-part local multiplication counts (equals the part sizes).
    pub local_flops: Vec<u64>,
}

impl SpmvReport {
    /// Total communicated words — must equal the communication volume.
    pub fn total_words(&self) -> u64 {
        self.fanout_words + self.fanin_words
    }
}

/// Serial reference SpMV with the synthetic values.
pub fn serial_spmv(a: &Coo) -> Vec<f64> {
    let mut u = vec![0.0f64; a.rows() as usize];
    for (i, j) in a.iter() {
        u[i as usize] += synthetic_value(i, j) * synthetic_input(j);
    }
    u
}

/// Simulates the four-step parallel SpMV of §I under `partition`, using the
/// greedy vector distribution unless one is supplied.
pub fn simulate_spmv(
    a: &Coo,
    partition: &NonzeroPartition,
    distribution: Option<&VectorDistribution>,
) -> SpmvReport {
    partition
        .check_against(a)
        .expect("partition does not match matrix");
    let p = partition.num_parts() as usize;
    let owned;
    let dist = match distribution {
        Some(d) => d,
        None => {
            owned = distribute_vectors(a, partition);
            &owned
        }
    };

    let mut fanout_send = vec![0u64; p];
    let mut fanout_recv = vec![0u64; p];
    let mut fanin_send = vec![0u64; p];
    let mut fanin_recv = vec![0u64; p];
    let mut local_flops = vec![0u64; p];

    // Step 1 — fan-out. Each part builds the set of input entries it needs;
    // the owner "sends" every entry needed by another part. `have[q]` holds
    // part q's local copy of the input vector (sparse, keyed by column).
    // A stamp array tracks which (part, column) pairs are needed.
    let n = a.cols() as usize;
    let mut needed = vec![false; p * n];
    for (k, &(_, j)) in a.entries().iter().enumerate() {
        let q = partition.part_of(k) as usize;
        needed[q * n + j as usize] = true;
    }
    for j in 0..n {
        let owner = dist.input_owner[j] as usize;
        for q in 0..p {
            if needed[q * n + j] && q != owner {
                fanout_send[owner] += 1;
                fanout_recv[q] += 1;
            }
        }
    }

    // Step 2 — local multiplication into per-part partial sums.
    let m = a.rows() as usize;
    let mut partial = vec![0.0f64; p * m];
    let mut touched = vec![false; p * m];
    for (k, &(i, j)) in a.entries().iter().enumerate() {
        let q = partition.part_of(k) as usize;
        // The needed input entry is locally available after fan-out.
        debug_assert!(needed[q * n + j as usize]);
        partial[q * m + i as usize] += synthetic_value(i, j) * synthetic_input(j);
        touched[q * m + i as usize] = true;
        local_flops[q] += 1;
    }

    // Step 3 — fan-in: every part with a nonzero partial sum for row i sends
    // it to the owner of u_i (unless it is the owner).
    // Step 4 — summation at the owner.
    let mut output = vec![0.0f64; m];
    for i in 0..m {
        let owner = dist.output_owner[i] as usize;
        let mut acc = 0.0f64;
        for q in 0..p {
            if touched[q * m + i] {
                if q != owner {
                    fanin_send[q] += 1;
                    fanin_recv[owner] += 1;
                }
                acc += partial[q * m + i];
            }
        }
        output[i] = acc;
    }

    SpmvReport {
        fanout_words: fanout_send.iter().sum(),
        fanin_words: fanin_send.iter().sum(),
        fanout_send,
        fanout_recv,
        fanin_send,
        fanin_recv,
        output,
        local_flops,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::communication_volume;

    fn dense(n: Idx) -> Coo {
        let entries: Vec<(Idx, Idx)> = (0..n).flat_map(|i| (0..n).map(move |j| (i, j))).collect();
        Coo::new(n, n, entries).unwrap()
    }

    #[test]
    fn single_part_no_communication_and_correct_result() {
        let a = dense(6);
        let p = NonzeroPartition::trivial(a.nnz());
        let report = simulate_spmv(&a, &p, None);
        assert_eq!(report.total_words(), 0);
        assert_eq!(report.output, serial_spmv(&a));
        assert_eq!(report.local_flops, vec![36]);
    }

    #[test]
    fn counted_words_equal_volume_checkerboard() {
        let a = dense(5);
        let parts: Vec<Idx> = a.iter().map(|(i, j)| (i + j) % 2).collect();
        let p = NonzeroPartition::new(2, parts).unwrap();
        let report = simulate_spmv(&a, &p, None);
        assert_eq!(report.total_words(), communication_volume(&a, &p));
        assert_eq!(report.output, serial_spmv(&a));
    }

    #[test]
    fn counted_words_equal_volume_four_parts() {
        let a = dense(8);
        let parts: Vec<Idx> = a.iter().map(|(i, j)| 2 * (i / 4) + j / 4).collect();
        let p = NonzeroPartition::new(4, parts).unwrap();
        let report = simulate_spmv(&a, &p, None);
        assert_eq!(report.total_words(), communication_volume(&a, &p));
        assert_eq!(report.output, serial_spmv(&a));
        // 2x2 block partition of a dense 8x8: every row and column is cut once.
        assert_eq!(report.total_words(), 16);
    }

    #[test]
    fn report_consistent_with_bsp_cost() {
        use crate::bsp::bsp_cost_with;
        let a = dense(7);
        let parts: Vec<Idx> = a.iter().map(|(i, j)| (i * 7 + j) % 3).collect();
        let p = NonzeroPartition::new(3, parts).unwrap();
        let dist = distribute_vectors(&a, &p);
        let report = simulate_spmv(&a, &p, Some(&dist));
        let cost = bsp_cost_with(&a, &p, Some(&dist));
        let h_out = report
            .fanout_send
            .iter()
            .zip(&report.fanout_recv)
            .map(|(&s, &r)| s.max(r))
            .max()
            .unwrap();
        let h_in = report
            .fanin_send
            .iter()
            .zip(&report.fanin_recv)
            .map(|(&s, &r)| s.max(r))
            .max()
            .unwrap();
        assert_eq!(cost.fanout_h, h_out);
        assert_eq!(cost.fanin_h, h_in);
    }

    #[test]
    fn rectangular_matrix_works() {
        let a = Coo::new(3, 5, vec![(0, 0), (0, 4), (1, 2), (2, 2), (2, 3)]).unwrap();
        let parts = vec![0, 1, 0, 1, 1];
        let p = NonzeroPartition::new(2, parts).unwrap();
        let report = simulate_spmv(&a, &p, None);
        assert_eq!(report.total_words(), communication_volume(&a, &p));
        assert_eq!(report.output, serial_spmv(&a));
    }
}

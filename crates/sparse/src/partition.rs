//! Nonzero partitions and the paper's cost model.
//!
//! A [`NonzeroPartition`] assigns every stored nonzero of a [`Coo`] to one of
//! `p` parts (processors). This module computes:
//!
//! * the **communication volume** of eqns (2)–(3):
//!   `V = Σ_i (λ_i − 1)` over all non-empty rows and columns, where `λ` is
//!   the number of distinct parts owning nonzeros of that row/column;
//! * the **load-imbalance** quantities of eqn (1):
//!   `max_k |A_k| ≤ (1+ε)·⌈N/p⌉`.
//!
//! Both are pure functions of the pattern and the assignment; the SpMV
//! simulator in [`crate::spmv`] validates the volume formula by actually
//! counting communicated words.

use crate::{Coo, Idx};

/// Errors from validating a partition against a matrix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PartitionError {
    /// The assignment vector length differs from the matrix nonzero count.
    LengthMismatch {
        /// entries in the assignment
        assigned: usize,
        /// nonzeros in the matrix
        nnz: usize,
    },
    /// An entry was assigned to a part `>= num_parts`.
    PartOutOfRange {
        /// the offending nonzero id
        nonzero: usize,
        /// its part
        part: Idx,
        /// number of parts
        num_parts: Idx,
    },
}

impl std::fmt::Display for PartitionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PartitionError::LengthMismatch { assigned, nnz } => write!(
                f,
                "partition assigns {assigned} nonzeros but the matrix has {nnz}"
            ),
            PartitionError::PartOutOfRange {
                nonzero,
                part,
                num_parts,
            } => write!(
                f,
                "nonzero {nonzero} assigned to part {part} >= num_parts {num_parts}"
            ),
        }
    }
}

impl std::error::Error for PartitionError {}

/// An assignment of every nonzero (by canonical COO id) to a part.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NonzeroPartition {
    num_parts: Idx,
    parts: Vec<Idx>,
}

impl NonzeroPartition {
    /// Wraps an assignment vector; `parts[k]` is the part of nonzero `k`.
    pub fn new(num_parts: Idx, parts: Vec<Idx>) -> Result<Self, PartitionError> {
        for (k, &p) in parts.iter().enumerate() {
            if p >= num_parts {
                return Err(PartitionError::PartOutOfRange {
                    nonzero: k,
                    part: p,
                    num_parts,
                });
            }
        }
        Ok(NonzeroPartition { num_parts, parts })
    }

    /// Everything on part 0.
    pub fn trivial(nnz: usize) -> Self {
        NonzeroPartition {
            num_parts: 1,
            parts: vec![0; nnz],
        }
    }

    /// Validates the assignment length against a matrix.
    pub fn check_against(&self, a: &Coo) -> Result<(), PartitionError> {
        if self.parts.len() != a.nnz() {
            return Err(PartitionError::LengthMismatch {
                assigned: self.parts.len(),
                nnz: a.nnz(),
            });
        }
        Ok(())
    }

    /// Number of parts `p`.
    #[inline]
    pub fn num_parts(&self) -> Idx {
        self.num_parts
    }

    /// The raw assignment, indexed by canonical nonzero id.
    #[inline]
    pub fn parts(&self) -> &[Idx] {
        &self.parts
    }

    /// Part of nonzero `k`.
    #[inline]
    pub fn part_of(&self, k: usize) -> Idx {
        self.parts[k]
    }

    /// Mutable access for refinement algorithms.
    #[inline]
    pub fn parts_mut(&mut self) -> &mut [Idx] {
        &mut self.parts
    }

    /// Nonzeros per part.
    pub fn part_sizes(&self) -> Vec<u64> {
        let mut sizes = vec![0u64; self.num_parts as usize];
        for &p in &self.parts {
            sizes[p as usize] += 1;
        }
        sizes
    }

    /// Ids of the nonzeros in each part, in canonical order.
    pub fn part_members(&self) -> Vec<Vec<Idx>> {
        let mut members = vec![Vec::new(); self.num_parts as usize];
        for (k, &p) in self.parts.iter().enumerate() {
            members[p as usize].push(k as Idx);
        }
        members
    }

    /// Re-labels a bipartition by swapping parts 0 and 1.
    ///
    /// Volume and balance are invariant under relabeling; some algorithms
    /// (Algorithm 2's direction switch) care about which side is which.
    pub fn swapped(&self) -> Self {
        assert_eq!(self.num_parts, 2, "swapped() is for bipartitions");
        NonzeroPartition {
            num_parts: 2,
            parts: self.parts.iter().map(|&p| 1 - p).collect(),
        }
    }
}

/// Largest part size `max_k |A_k|`.
pub fn max_part_size(partition: &NonzeroPartition) -> u64 {
    partition.part_sizes().into_iter().max().unwrap_or(0)
}

/// Load imbalance `ε' = max_k |A_k| · p / N − 1`; the constraint of eqn (1)
/// is satisfied iff `ε' ≤ ε` (up to the integrality of part sizes).
///
/// Returns `0.0` for an empty matrix.
pub fn load_imbalance(partition: &NonzeroPartition) -> f64 {
    let n = partition.parts().len();
    if n == 0 {
        return 0.0;
    }
    let max = max_part_size(partition) as f64;
    max * partition.num_parts() as f64 / n as f64 - 1.0
}

/// The integral nonzero budget per part allowed by eqn (1):
/// `⌊(1+ε)·N/p⌋`, but never below `⌈N/p⌉` (a perfectly even split must
/// always be feasible).
pub fn part_budget(nnz: usize, num_parts: Idx, epsilon: f64) -> u64 {
    let even = (nnz as u64).div_ceil(num_parts as u64);
    let relaxed = ((1.0 + epsilon) * nnz as f64 / num_parts as f64).floor() as u64;
    relaxed.max(even)
}

/// `λ` per row: number of distinct parts among each row's nonzeros.
/// Empty rows get `λ = 0`. Runs in `O(N + m)` using the canonical row-major
/// entry order and a per-part stamp array.
pub fn row_lambdas(a: &Coo, partition: &NonzeroPartition) -> Vec<Idx> {
    debug_assert_eq!(a.nnz(), partition.parts().len());
    let mut lambdas = vec![0 as Idx; a.rows() as usize];
    let mut stamp = vec![Idx::MAX; partition.num_parts() as usize];
    for (k, &(i, _)) in a.entries().iter().enumerate() {
        let p = partition.part_of(k) as usize;
        if stamp[p] != i {
            stamp[p] = i;
            lambdas[i as usize] += 1;
        }
    }
    lambdas
}

/// `λ` per column; see [`row_lambdas`].
///
/// Walks the entries through [`Coo::column_major_order`] instead of
/// materialising a [`Csc`] — the permutation is the only part of the CSC
/// build the stamp scan actually needs.
pub fn col_lambdas(a: &Coo, partition: &NonzeroPartition) -> Vec<Idx> {
    debug_assert_eq!(a.nnz(), partition.parts().len());
    let perm = a.column_major_order();
    let mut lambdas = vec![0 as Idx; a.cols() as usize];
    let mut stamp = vec![Idx::MAX; partition.num_parts() as usize];
    for &k in &perm {
        let j = a.entry(k as usize).1;
        let p = partition.part_of(k as usize) as usize;
        if stamp[p] != j {
            stamp[p] = j;
            lambdas[j as usize] += 1;
        }
    }
    lambdas
}

/// Total communication volume of eqn (3):
/// `V = Σ_rows (λ_i − 1) + Σ_cols (λ_j − 1)` over non-empty rows/columns.
///
/// For `p ≤ 64` (every bipartitioning call and all the experiment part
/// counts) this takes a bitmask fast path: one unordered pass over the
/// entries fills a `u64` part-set per row and per column, and `λ` is a
/// popcount — no column permutation, no stamp arrays.
pub fn communication_volume(a: &Coo, partition: &NonzeroPartition) -> u64 {
    debug_assert_eq!(a.nnz(), partition.parts().len());
    if partition.num_parts() <= 64 {
        let mut row_mask = vec![0u64; a.rows() as usize];
        let mut col_mask = vec![0u64; a.cols() as usize];
        for (k, &(i, j)) in a.entries().iter().enumerate() {
            let bit = 1u64 << partition.part_of(k);
            row_mask[i as usize] |= bit;
            col_mask[j as usize] |= bit;
        }
        return row_mask
            .iter()
            .chain(col_mask.iter())
            .map(|&m| (m.count_ones() as u64).saturating_sub(1))
            .sum();
    }
    let rl = row_lambdas(a, partition);
    let cl = col_lambdas(a, partition);
    let row_v: u64 = rl.iter().map(|&l| (l as u64).saturating_sub(1)).sum();
    let col_v: u64 = cl.iter().map(|&l| (l as u64).saturating_sub(1)).sum();
    row_v + col_v
}

/// Brute-force volume computation via per-row/column part sets; `O(N·p)`
/// worst case. Exists purely as an independent oracle for tests.
pub fn communication_volume_reference(a: &Coo, partition: &NonzeroPartition) -> u64 {
    let mut volume = 0u64;
    for i in 0..a.rows() {
        let mut parts: Vec<Idx> = a
            .entries()
            .iter()
            .enumerate()
            .filter(|(_, &(r, _))| r == i)
            .map(|(k, _)| partition.part_of(k))
            .collect();
        parts.sort_unstable();
        parts.dedup();
        volume += (parts.len() as u64).saturating_sub(1);
    }
    for j in 0..a.cols() {
        let mut parts: Vec<Idx> = a
            .entries()
            .iter()
            .enumerate()
            .filter(|(_, &(_, c))| c == j)
            .map(|(k, _)| partition.part_of(k))
            .collect();
        parts.sort_unstable();
        parts.dedup();
        volume += (parts.len() as u64).saturating_sub(1);
    }
    volume
}

#[cfg(test)]
mod tests {
    use super::*;

    fn checkerboard(n: Idx) -> (Coo, NonzeroPartition) {
        // Dense n×n pattern, parts alternating like a checkerboard: worst case.
        let entries: Vec<(Idx, Idx)> = (0..n).flat_map(|i| (0..n).map(move |j| (i, j))).collect();
        let a = Coo::new(n, n, entries).unwrap();
        let parts: Vec<Idx> = a.iter().map(|(i, j)| (i + j) % 2).collect();
        let p = NonzeroPartition::new(2, parts).unwrap();
        (a, p)
    }

    #[test]
    fn trivial_partition_has_zero_volume() {
        let a = Coo::new(3, 3, vec![(0, 0), (1, 1), (2, 2), (0, 2)]).unwrap();
        let p = NonzeroPartition::trivial(a.nnz());
        assert_eq!(communication_volume(&a, &p), 0);
        assert_eq!(load_imbalance(&p), 0.0);
    }

    #[test]
    fn checkerboard_volume() {
        let (a, p) = checkerboard(4);
        // Every row and column has both parts: V = 2·n·(2−1) = 8.
        assert_eq!(communication_volume(&a, &p), 8);
        assert_eq!(communication_volume_reference(&a, &p), 8);
        assert_eq!(row_lambdas(&a, &p), vec![2, 2, 2, 2]);
        assert_eq!(col_lambdas(&a, &p), vec![2, 2, 2, 2]);
    }

    #[test]
    fn column_split_only_cuts_rows() {
        // 2x2 dense, split by column.
        let a = Coo::new(2, 2, vec![(0, 0), (0, 1), (1, 0), (1, 1)]).unwrap();
        let p = NonzeroPartition::new(2, vec![0, 1, 0, 1]).unwrap();
        assert_eq!(row_lambdas(&a, &p), vec![2, 2]);
        assert_eq!(col_lambdas(&a, &p), vec![1, 1]);
        assert_eq!(communication_volume(&a, &p), 2);
    }

    #[test]
    fn empty_rows_do_not_contribute() {
        let a = Coo::new(4, 2, vec![(0, 0), (0, 1)]).unwrap();
        let p = NonzeroPartition::new(2, vec![0, 1]).unwrap();
        assert_eq!(row_lambdas(&a, &p), vec![2, 0, 0, 0]);
        assert_eq!(communication_volume(&a, &p), 1);
    }

    #[test]
    fn part_sizes_and_imbalance() {
        let p = NonzeroPartition::new(2, vec![0, 0, 0, 1]).unwrap();
        assert_eq!(p.part_sizes(), vec![3, 1]);
        assert_eq!(max_part_size(&p), 3);
        assert!((load_imbalance(&p) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn budget_is_at_least_even_split() {
        assert_eq!(part_budget(10, 2, 0.0), 5);
        assert_eq!(part_budget(11, 2, 0.0), 6); // ceil
        assert_eq!(part_budget(100, 2, 0.03), 51);
        assert_eq!(part_budget(1000, 4, 0.03), 257);
        assert_eq!(part_budget(0, 2, 0.03), 0);
    }

    #[test]
    fn rejects_out_of_range_parts() {
        assert!(NonzeroPartition::new(2, vec![0, 2]).is_err());
    }

    #[test]
    fn swapped_preserves_volume() {
        let (a, p) = checkerboard(3);
        assert_eq!(
            communication_volume(&a, &p),
            communication_volume(&a, &p.swapped())
        );
    }

    #[test]
    fn bitmask_fast_path_matches_reference_across_part_counts() {
        // Deterministic scatter over a sparse-ish pattern; p sweeps through
        // the bitmask fast path (p ≤ 64) and the stamp fallback (p > 64).
        let entries: Vec<(Idx, Idx)> = (0..12u32)
            .flat_map(|i| {
                (0..12u32)
                    .filter(move |j| (i * 7 + j * 3) % 4 != 1)
                    .map(move |j| (i, j))
            })
            .collect();
        let a = Coo::new(12, 12, entries).unwrap();
        for p in [1u32, 2, 3, 7, 10, 63, 64, 65, 100] {
            let parts: Vec<Idx> = (0..a.nnz()).map(|k| (k as u32 * 31 + 5) % p).collect();
            let np = NonzeroPartition::new(p, parts).unwrap();
            assert_eq!(
                communication_volume(&a, &np),
                communication_volume_reference(&a, &np),
                "p = {p}"
            );
        }
    }

    #[test]
    fn check_against_detects_length_mismatch() {
        let a = Coo::new(2, 2, vec![(0, 0)]).unwrap();
        let p = NonzeroPartition::new(2, vec![0, 1]).unwrap();
        assert!(p.check_against(&a).is_err());
    }
}

//! Banded and perturbed-band patterns (discretised 1D operators, time
//! series, finite differences).

use crate::{Coo, Idx};
use rand::Rng;

/// Symmetric banded pattern: all entries with `|i − j| ≤ half_bandwidth`.
pub fn banded(n: Idx, half_bandwidth: Idx) -> Coo {
    assert!(n > 0);
    let mut entries = Vec::new();
    for i in 0..n {
        let lo = i.saturating_sub(half_bandwidth);
        let hi = (i + half_bandwidth).min(n - 1);
        for j in lo..=hi {
            entries.push((i, j));
        }
    }
    Coo::new(n, n, entries).expect("band stays in bounds")
}

/// Tridiagonal pattern — `banded(n, 1)`.
pub fn tridiagonal(n: Idx) -> Coo {
    banded(n, 1)
}

/// A band with randomly dropped off-diagonal entries (keeping the pattern
/// symmetric) and a sprinkle of random long-range couples — models
/// finite-difference matrices with irregular boundaries.
///
/// `drop_probability` removes band entries; `long_range` adds that many
/// random symmetric far pairs.
pub fn perturbed_band<R: Rng>(
    n: Idx,
    half_bandwidth: Idx,
    drop_probability: f64,
    long_range: usize,
    rng: &mut R,
) -> Coo {
    assert!(n > 0);
    let mut entries = Vec::new();
    for i in 0..n {
        entries.push((i, i));
        let hi = (i + half_bandwidth).min(n - 1);
        for j in (i + 1)..=hi {
            if rng.gen::<f64>() >= drop_probability {
                entries.push((i, j));
                entries.push((j, i));
            }
        }
    }
    for _ in 0..long_range {
        let i = rng.gen_range(0..n);
        let j = rng.gen_range(0..n);
        if i != j {
            entries.push((i, j));
            entries.push((j, i));
        }
    }
    Coo::new(n, n, entries).expect("entries stay in bounds")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn tridiagonal_counts() {
        let a = tridiagonal(10);
        assert_eq!(a.nnz(), 10 + 2 * 9);
        assert!(a.is_pattern_symmetric());
    }

    #[test]
    fn band_respects_width() {
        let a = banded(20, 3);
        for (i, j) in a.iter() {
            assert!((i as i64 - j as i64).abs() <= 3);
        }
        assert!(a.is_pattern_symmetric());
    }

    #[test]
    fn perturbed_band_stays_symmetric() {
        let mut rng = StdRng::seed_from_u64(20);
        let a = perturbed_band(50, 4, 0.3, 10, &mut rng);
        assert!(a.is_pattern_symmetric());
        for d in 0..50 {
            assert!(a.contains(d, d));
        }
    }

    #[test]
    fn full_drop_leaves_diagonal_plus_long_range() {
        let mut rng = StdRng::seed_from_u64(21);
        let a = perturbed_band(30, 2, 1.0, 0, &mut rng);
        assert_eq!(a.nnz(), 30);
    }
}

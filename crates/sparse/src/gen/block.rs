//! Structured composite patterns: block-diagonal with coupling, arrow
//! matrices, and RMAT-like Kronecker patterns.

use super::PairSet;
use crate::{Coo, Idx};
use rand::Rng;

/// Block-diagonal pattern with dense-ish random blocks plus sparse random
/// coupling entries between neighbouring blocks. Square,
/// `n = num_blocks · block_size`.
pub fn block_diagonal<R: Rng>(
    num_blocks: Idx,
    block_size: Idx,
    block_fill: f64,
    coupling_per_block: usize,
    rng: &mut R,
) -> Coo {
    assert!(num_blocks > 0 && block_size > 0);
    let n = num_blocks * block_size;
    let mut set = PairSet::new(n, n);
    for b in 0..num_blocks {
        let base = b * block_size;
        for i in 0..block_size {
            set.insert(base + i, base + i);
            for j in 0..block_size {
                if i != j && rng.gen::<f64>() < block_fill {
                    set.insert(base + i, base + j);
                }
            }
        }
        if b + 1 < num_blocks {
            let next = (b + 1) * block_size;
            for _ in 0..coupling_per_block {
                let i = base + rng.gen_range(0..block_size);
                let j = next + rng.gen_range(0..block_size);
                set.insert(i, j);
                set.insert(j, i);
            }
        }
    }
    set.into_coo()
}

/// Arrow pattern: tridiagonal core plus `border` dense final rows and
/// columns — the classic "hard for 1D methods" shape (its dense rows force
/// either direction to cut heavily).
pub fn arrow(n: Idx, border: Idx) -> Coo {
    assert!(n > border, "border must be smaller than the matrix");
    let core = n - border;
    let mut entries = Vec::new();
    for i in 0..core {
        entries.push((i, i));
        if i + 1 < core {
            entries.push((i, i + 1));
            entries.push((i + 1, i));
        }
    }
    for b in 0..border {
        let r = core + b;
        entries.push((r, r));
        for j in 0..core {
            entries.push((r, j));
            entries.push((j, r));
        }
    }
    Coo::new(n, n, entries).expect("entries stay in bounds")
}

/// RMAT/Kronecker-style power-law pattern, square with side `2^scale`.
/// Standard parameters `(a, b, c)` with `d = 1 − a − b − c`; the classic
/// "nice" choice is `(0.57, 0.19, 0.19)`.
pub fn rmat<R: Rng>(scale: u32, target_nnz: usize, a: f64, b: f64, c: f64, rng: &mut R) -> Coo {
    assert!(scale > 0 && scale < 31);
    assert!(a + b + c < 1.0 + 1e-9, "quadrant probabilities exceed 1");
    let n: Idx = 1 << scale;
    let mut set = PairSet::new(n, n);
    let target = target_nnz.min((n as u64 * n as u64) as usize);
    let mut guard = 0usize;
    while set.len() < target && guard < 64 * target.max(1) {
        guard += 1;
        let (mut i, mut j) = (0 as Idx, 0 as Idx);
        for level in (0..scale).rev() {
            let x = rng.gen::<f64>();
            let bit = 1 << level;
            if x < a {
                // top-left: nothing to add
            } else if x < a + b {
                j |= bit;
            } else if x < a + b + c {
                i |= bit;
            } else {
                i |= bit;
                j |= bit;
            }
        }
        set.insert(i, j);
    }
    set.into_coo()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::PatternStats;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn block_diagonal_has_no_far_coupling() {
        let mut rng = StdRng::seed_from_u64(30);
        let a = block_diagonal(4, 10, 0.3, 3, &mut rng);
        assert_eq!(a.rows(), 40);
        for (i, j) in a.iter() {
            let bi = i / 10;
            let bj = j / 10;
            assert!(
                bi == bj || bi + 1 == bj || bj + 1 == bi,
                "entry ({i},{j}) couples non-adjacent blocks"
            );
        }
    }

    #[test]
    fn arrow_shape() {
        let a = arrow(20, 2);
        // Dense border rows.
        let counts = a.row_counts();
        assert!(counts[18] >= 18);
        assert!(counts[19] >= 18);
        assert!(a.is_pattern_symmetric());
    }

    #[test]
    fn arrow_rejects_oversized_border() {
        let result = std::panic::catch_unwind(|| arrow(5, 5));
        assert!(result.is_err());
    }

    #[test]
    fn rmat_is_skewed() {
        let mut rng = StdRng::seed_from_u64(31);
        let a = rmat(8, 2000, 0.57, 0.19, 0.19, &mut rng);
        assert_eq!(a.rows(), 256);
        assert!(a.nnz() >= 1500, "rmat fell far short: {}", a.nnz());
        let s = PatternStats::compute(&a);
        assert!(s.max_row_nnz as f64 > 4.0 * s.avg_row_nnz);
    }

    #[test]
    fn rmat_deterministic() {
        let a = rmat(6, 500, 0.55, 0.2, 0.2, &mut StdRng::seed_from_u64(8));
        let b = rmat(6, 500, 0.55, 0.2, 0.2, &mut StdRng::seed_from_u64(8));
        assert_eq!(a, b);
    }
}

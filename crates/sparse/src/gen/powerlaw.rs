//! Skewed-degree patterns: Chung–Lu graphs, scale-free directed patterns,
//! and bipartite term–document matrices.
//!
//! Matrices with a few very dense rows/columns are exactly the regime where
//! 1D models pay a large communication price and the medium-grain split
//! heuristic's "small row/column wins" rule matters, so the synthetic
//! collection needs a healthy share of them.

use super::PairSet;
use crate::{Coo, Idx};
use rand::Rng;

/// Draws an index from a discrete distribution given by cumulative weights.
fn sample_cdf<R: Rng>(cdf: &[f64], rng: &mut R) -> usize {
    let x = rng.gen::<f64>() * cdf.last().copied().unwrap_or(1.0);
    cdf.partition_point(|&c| c < x).min(cdf.len() - 1)
}

/// Power-law weights `w_k = (k+1)^(−alpha)`, as a cumulative distribution.
fn powerlaw_cdf(n: usize, alpha: f64) -> Vec<f64> {
    let mut cdf = Vec::with_capacity(n);
    let mut acc = 0.0;
    for k in 0..n {
        acc += ((k + 1) as f64).powf(-alpha);
        cdf.push(acc);
    }
    cdf
}

/// Chung–Lu style structurally symmetric pattern with power-law degrees
/// (exponent `alpha`, typically 0.5–1.5), full diagonal.
pub fn chung_lu_symmetric<R: Rng>(n: Idx, target_nnz: usize, alpha: f64, rng: &mut R) -> Coo {
    assert!(n > 0);
    let cdf = powerlaw_cdf(n as usize, alpha);
    let mut set = PairSet::new(n, n);
    for d in 0..n {
        set.insert(d, d);
    }
    let target = target_nnz
        .max(n as usize)
        .min((n as u64 * n as u64) as usize);
    let mut guard = 0usize;
    while set.len() + 1 < target && guard < 64 * target {
        guard += 1;
        let i = sample_cdf(&cdf, rng) as Idx;
        let j = sample_cdf(&cdf, rng) as Idx;
        if i == j {
            continue;
        }
        if set.insert(i, j) {
            set.insert(j, i);
        }
    }
    let coo = set.into_coo();
    debug_assert!(coo.is_pattern_symmetric());
    coo
}

/// Directed scale-free pattern: row and column indices drawn from
/// independent power laws (different exponents give asymmetric hub
/// structure). Square and almost surely non-symmetric.
pub fn scale_free_directed<R: Rng>(
    n: Idx,
    target_nnz: usize,
    row_alpha: f64,
    col_alpha: f64,
    rng: &mut R,
) -> Coo {
    assert!(n > 0);
    let row_cdf = powerlaw_cdf(n as usize, row_alpha);
    let col_cdf = powerlaw_cdf(n as usize, col_alpha);
    let mut set = PairSet::new(n, n);
    for d in 0..n {
        set.insert(d, d);
    }
    let target = target_nnz
        .max(n as usize)
        .min((n as u64 * n as u64) as usize);
    let mut guard = 0usize;
    while set.len() < target && guard < 64 * target {
        guard += 1;
        let i = sample_cdf(&row_cdf, rng) as Idx;
        let j = sample_cdf(&col_cdf, rng) as Idx;
        set.insert(i, j);
    }
    set.into_coo()
}

/// Bipartite "term–document" pattern: `rows` terms × `cols` documents, term
/// popularity power-law distributed, every document non-empty with
/// `avg_terms` entries on average. Rectangular.
pub fn term_document<R: Rng>(rows: Idx, cols: Idx, avg_terms: usize, rng: &mut R) -> Coo {
    assert!(rows > 0 && cols > 0 && avg_terms > 0);
    let cdf = powerlaw_cdf(rows as usize, 1.0);
    let mut set = PairSet::new(rows, cols);
    for doc in 0..cols {
        // 1..2*avg_terms entries per document, clamped to the term count.
        let k = rng.gen_range(1..=(2 * avg_terms).max(2)).min(rows as usize);
        let mut guard = 0usize;
        let mut placed = 0usize;
        while placed < k && guard < 32 * k {
            guard += 1;
            let term = sample_cdf(&cdf, rng) as Idx;
            if set.insert(term, doc) {
                placed += 1;
            }
        }
    }
    set.into_coo()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::{MatrixClass, PatternStats};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn chung_lu_is_symmetric_and_skewed() {
        let mut rng = StdRng::seed_from_u64(10);
        let a = chung_lu_symmetric(200, 2000, 0.9, &mut rng);
        assert!(a.is_pattern_symmetric());
        let counts = a.row_counts();
        let max = *counts.iter().max().unwrap();
        let min = *counts.iter().min().unwrap();
        assert!(
            max > 4 * min.max(1),
            "expected skew, got max={max} min={min}"
        );
    }

    #[test]
    fn scale_free_is_square_nonsymmetric() {
        let mut rng = StdRng::seed_from_u64(11);
        let a = scale_free_directed(150, 1500, 0.8, 1.2, &mut rng);
        let s = PatternStats::compute(&a);
        assert_eq!(s.class(), MatrixClass::SquareNonSymmetric);
    }

    #[test]
    fn term_document_has_no_empty_documents() {
        let mut rng = StdRng::seed_from_u64(12);
        let a = term_document(300, 120, 6, &mut rng);
        assert_eq!(PatternStats::compute(&a).class(), MatrixClass::Rectangular);
        let col_counts = a.col_counts();
        assert!(col_counts.iter().all(|&c| c > 0));
    }

    #[test]
    fn cdf_sampling_in_range() {
        let cdf = powerlaw_cdf(10, 1.0);
        let mut rng = StdRng::seed_from_u64(13);
        for _ in 0..100 {
            assert!(sample_cdf(&cdf, &mut rng) < 10);
        }
    }

    #[test]
    fn deterministic() {
        let a = chung_lu_symmetric(80, 700, 1.0, &mut StdRng::seed_from_u64(7));
        let b = chung_lu_symmetric(80, 700, 1.0, &mut StdRng::seed_from_u64(7));
        assert_eq!(a, b);
    }
}

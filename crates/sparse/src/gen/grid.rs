//! Grid Laplacian patterns — the classic symmetric PDE matrices.

use crate::{Coo, Idx};

/// 5-point stencil Laplacian on a `kx × ky` grid: `n = kx·ky`,
/// symmetric, full diagonal, ≤ 5 nonzeros per row.
pub fn laplacian_2d(kx: Idx, ky: Idx) -> Coo {
    assert!(kx > 0 && ky > 0);
    let n = kx * ky;
    let idx = |x: Idx, y: Idx| y * kx + x;
    let mut entries = Vec::with_capacity(5 * n as usize);
    for y in 0..ky {
        for x in 0..kx {
            let c = idx(x, y);
            entries.push((c, c));
            if x > 0 {
                entries.push((c, idx(x - 1, y)));
            }
            if x + 1 < kx {
                entries.push((c, idx(x + 1, y)));
            }
            if y > 0 {
                entries.push((c, idx(x, y - 1)));
            }
            if y + 1 < ky {
                entries.push((c, idx(x, y + 1)));
            }
        }
    }
    Coo::new(n, n, entries).expect("stencil stays in bounds")
}

/// 9-point stencil Laplacian on a `kx × ky` grid (adds diagonals neighbours).
pub fn laplacian_2d_9pt(kx: Idx, ky: Idx) -> Coo {
    assert!(kx > 0 && ky > 0);
    let n = kx * ky;
    let idx = |x: Idx, y: Idx| y * kx + x;
    let mut entries = Vec::with_capacity(9 * n as usize);
    for y in 0..ky {
        for x in 0..kx {
            let c = idx(x, y);
            for dy in -1i64..=1 {
                for dx in -1i64..=1 {
                    let nx = x as i64 + dx;
                    let ny = y as i64 + dy;
                    if nx >= 0 && ny >= 0 && (nx as Idx) < kx && (ny as Idx) < ky {
                        entries.push((c, idx(nx as Idx, ny as Idx)));
                    }
                }
            }
        }
    }
    Coo::new(n, n, entries).expect("stencil stays in bounds")
}

/// 7-point stencil Laplacian on a `kx × ky × kz` grid.
pub fn laplacian_3d(kx: Idx, ky: Idx, kz: Idx) -> Coo {
    assert!(kx > 0 && ky > 0 && kz > 0);
    let n = kx * ky * kz;
    let idx = |x: Idx, y: Idx, z: Idx| (z * ky + y) * kx + x;
    let mut entries = Vec::with_capacity(7 * n as usize);
    for z in 0..kz {
        for y in 0..ky {
            for x in 0..kx {
                let c = idx(x, y, z);
                entries.push((c, c));
                if x > 0 {
                    entries.push((c, idx(x - 1, y, z)));
                }
                if x + 1 < kx {
                    entries.push((c, idx(x + 1, y, z)));
                }
                if y > 0 {
                    entries.push((c, idx(x, y - 1, z)));
                }
                if y + 1 < ky {
                    entries.push((c, idx(x, y + 1, z)));
                }
                if z > 0 {
                    entries.push((c, idx(x, y, z - 1)));
                }
                if z + 1 < kz {
                    entries.push((c, idx(x, y, z + 1)));
                }
            }
        }
    }
    Coo::new(n, n, entries).expect("stencil stays in bounds")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::{MatrixClass, PatternStats};

    #[test]
    fn laplacian_2d_shape() {
        let a = laplacian_2d(4, 3);
        assert_eq!(a.rows(), 12);
        assert!(a.is_pattern_symmetric());
        // nnz = 5*interior + edge corrections: count directly.
        // Each of the 12 cells has 1 (diag) + degree. Grid 4x3 has
        // horizontal edges 3*3=9, vertical 4*2=8 -> 17 edges, each giving
        // two off-diagonal entries: 12 + 34 = 46.
        assert_eq!(a.nnz(), 46);
        assert_eq!(PatternStats::compute(&a).class(), MatrixClass::Symmetric);
    }

    #[test]
    fn laplacian_9pt_superset_of_5pt() {
        let a5 = laplacian_2d(5, 5);
        let a9 = laplacian_2d_9pt(5, 5);
        assert!(a9.nnz() > a5.nnz());
        for (i, j) in a5.iter() {
            assert!(a9.contains(i, j));
        }
        assert!(a9.is_pattern_symmetric());
    }

    #[test]
    fn laplacian_3d_shape() {
        let a = laplacian_3d(3, 3, 3);
        assert_eq!(a.rows(), 27);
        assert!(a.is_pattern_symmetric());
        // 27 diagonal + 2 * (#edges). Edges: 3 directions * 2*3*3 = 54.
        assert_eq!(a.nnz(), 27 + 2 * 54);
    }

    #[test]
    fn degenerate_1d_grid() {
        let a = laplacian_2d(6, 1);
        assert_eq!(a.rows(), 6);
        // Tridiagonal: 6 + 2*5 = 16.
        assert_eq!(a.nnz(), 16);
    }
}

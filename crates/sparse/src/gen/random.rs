//! Erdős–Rényi style uniform random patterns.

use super::PairSet;
use crate::{Coo, Idx};
use rand::Rng;

/// A random `rows × cols` pattern with (close to) `target_nnz` distinct
/// nonzeros sampled uniformly. Exact when `target_nnz ≤ rows·cols`, in which
/// case rejection sampling always terminates; the target is clamped
/// otherwise.
pub fn erdos_renyi<R: Rng>(rows: Idx, cols: Idx, target_nnz: usize, rng: &mut R) -> Coo {
    assert!(rows > 0 && cols > 0, "dimensions must be positive");
    let cells = rows as u64 * cols as u64;
    let target = (target_nnz as u64).min(cells) as usize;
    let mut set = PairSet::new(rows, cols);
    if target as u64 > cells / 2 {
        // Dense regime: enumerate cells and keep each with the right
        // probability, then top up/trim to hit the target exactly.
        let keep = target as f64 / cells as f64;
        for i in 0..rows {
            for j in 0..cols {
                if rng.gen::<f64>() < keep {
                    set.insert(i, j);
                }
            }
        }
        while set.len() < target {
            set.insert(rng.gen_range(0..rows), rng.gen_range(0..cols));
        }
        let mut coo = set.into_coo();
        if coo.nnz() > target {
            // Drop uniformly chosen surplus entries.
            let mut entries: Vec<(Idx, Idx)> = coo.entries().to_vec();
            while entries.len() > target {
                let victim = rng.gen_range(0..entries.len());
                entries.swap_remove(victim);
            }
            coo = Coo::new(rows, cols, entries).expect("entries stay in bounds");
        }
        coo
    } else {
        while set.len() < target {
            set.insert(rng.gen_range(0..rows), rng.gen_range(0..cols));
        }
        set.into_coo()
    }
}

/// Square Erdős–Rényi pattern with a guaranteed full diagonal (a common
/// shape for solver matrices); `target_nnz` counts the diagonal.
pub fn erdos_renyi_square<R: Rng>(n: Idx, target_nnz: usize, rng: &mut R) -> Coo {
    assert!(n > 0);
    let mut set = PairSet::new(n, n);
    for d in 0..n {
        set.insert(d, d);
    }
    let target = target_nnz
        .max(n as usize)
        .min((n as u64 * n as u64) as usize);
    while set.len() < target {
        set.insert(rng.gen_range(0..n), rng.gen_range(0..n));
    }
    set.into_coo()
}

/// Structurally symmetric random pattern: off-diagonal entries are sampled
/// as unordered pairs and mirrored; the diagonal is filled.
///
/// `target_nnz` is approximate (symmetrisation makes exact targets awkward);
/// the result has pattern symmetry exactly 1.
pub fn random_symmetric<R: Rng>(n: Idx, target_nnz: usize, rng: &mut R) -> Coo {
    assert!(n > 0);
    let mut set = PairSet::new(n, n);
    for d in 0..n {
        set.insert(d, d);
    }
    let target = target_nnz
        .max(n as usize)
        .min((n as u64 * n as u64) as usize);
    // Each accepted off-diagonal pair adds two entries.
    let mut guard = 0usize;
    while set.len() + 1 < target && guard < 64 * target {
        guard += 1;
        let i = rng.gen_range(0..n);
        let j = rng.gen_range(0..n);
        if i == j {
            continue;
        }
        if set.insert(i, j) {
            set.insert(j, i);
        }
    }
    let coo = set.into_coo();
    debug_assert!(coo.is_pattern_symmetric());
    coo
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn hits_target_exactly_in_sparse_regime() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = erdos_renyi(100, 80, 500, &mut rng);
        assert_eq!(a.nnz(), 500);
        assert_eq!(a.rows(), 100);
        assert_eq!(a.cols(), 80);
    }

    #[test]
    fn hits_target_exactly_in_dense_regime() {
        let mut rng = StdRng::seed_from_u64(2);
        let a = erdos_renyi(20, 20, 350, &mut rng);
        assert_eq!(a.nnz(), 350);
    }

    #[test]
    fn clamps_to_full_matrix() {
        let mut rng = StdRng::seed_from_u64(3);
        let a = erdos_renyi(5, 5, 100, &mut rng);
        assert_eq!(a.nnz(), 25);
    }

    #[test]
    fn square_variant_has_full_diagonal() {
        let mut rng = StdRng::seed_from_u64(4);
        let a = erdos_renyi_square(50, 300, &mut rng);
        assert_eq!(a.nnz(), 300);
        for d in 0..50 {
            assert!(a.contains(d, d));
        }
    }

    #[test]
    fn symmetric_variant_is_symmetric() {
        let mut rng = StdRng::seed_from_u64(5);
        let a = random_symmetric(60, 600, &mut rng);
        assert!(a.is_pattern_symmetric());
        assert!(a.nnz() >= 60);
        // Within one mirrored pair of the target.
        assert!((a.nnz() as i64 - 600).abs() <= 2, "nnz = {}", a.nnz());
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let a = erdos_renyi(40, 40, 200, &mut StdRng::seed_from_u64(9));
        let b = erdos_renyi(40, 40, 200, &mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
    }
}

//! Deterministic synthetic sparse matrix generators.
//!
//! The paper evaluates on 2264 matrices from the University of Florida
//! collection. That collection is not redistributable here, so
//! `mg-collection` composes a population from the generator families in this
//! module; all of them are pure functions of an injected RNG, so a fixed seed
//! reproduces the exact test set.
//!
//! Families:
//! * [`random`] — Erdős–Rényi rectangular/square/symmetric patterns,
//! * [`grid`] — 2D/3D grid Laplacians (5-, 9-, 7-point stencils),
//! * [`powerlaw`] — Chung–Lu style skewed-degree patterns and bipartite
//!   term–document matrices,
//! * [`band`] — banded and perturbed-band patterns,
//! * [`block`] — block-diagonal-with-coupling, arrow, and RMAT-like
//!   Kronecker patterns.

pub mod band;
pub mod block;
pub mod grid;
pub mod powerlaw;
pub mod random;

pub use band::{banded, perturbed_band, tridiagonal};
pub use block::{arrow, block_diagonal, rmat};
pub use grid::{laplacian_2d, laplacian_2d_9pt, laplacian_3d};
pub use powerlaw::{chung_lu_symmetric, scale_free_directed, term_document};
pub use random::{erdos_renyi, erdos_renyi_square, random_symmetric};

use crate::{Coo, Idx};
use std::collections::HashSet;

/// Deduplicating accumulator used by generators that sample random
/// coordinates: keeps at most one copy of each `(i, j)`.
pub(crate) struct PairSet {
    rows: Idx,
    cols: Idx,
    seen: HashSet<u64>,
    entries: Vec<(Idx, Idx)>,
}

impl PairSet {
    pub(crate) fn new(rows: Idx, cols: Idx) -> Self {
        PairSet {
            rows,
            cols,
            seen: HashSet::new(),
            entries: Vec::new(),
        }
    }

    /// Inserts `(i, j)` if new; returns whether it was inserted.
    pub(crate) fn insert(&mut self, i: Idx, j: Idx) -> bool {
        debug_assert!(i < self.rows && j < self.cols);
        let key = (i as u64) * (self.cols as u64) + j as u64;
        if self.seen.insert(key) {
            self.entries.push((i, j));
            true
        } else {
            false
        }
    }

    pub(crate) fn len(&self) -> usize {
        self.entries.len()
    }

    pub(crate) fn into_coo(self) -> Coo {
        Coo::new(self.rows, self.cols, self.entries).expect("PairSet enforces bounds")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pairset_dedups() {
        let mut s = PairSet::new(3, 3);
        assert!(s.insert(1, 2));
        assert!(!s.insert(1, 2));
        assert!(s.insert(2, 1));
        assert_eq!(s.len(), 2);
        let a = s.into_coo();
        assert_eq!(a.nnz(), 2);
    }
}

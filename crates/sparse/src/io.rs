//! Matrix Market (`.mtx`) reading and writing.
//!
//! Supports the `matrix coordinate` format in `pattern`, `real`, `integer`
//! and `complex` fields with `general`, `symmetric` and `skew-symmetric`
//! storage (symmetric storage is expanded to the full pattern, which is what
//! the partitioning pipeline expects). Values are parsed for validation but
//! discarded — see the crate-level note on pattern-only storage.

use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

use crate::{Coo, Idx, SparseError};

/// How the file stores symmetry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Symmetry {
    General,
    Symmetric,
    SkewSymmetric,
}

/// Number of value tokens that follow the two coordinates on each line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Field {
    Pattern,
    Real,
    Integer,
    Complex,
}

impl Field {
    fn value_tokens(self) -> usize {
        match self {
            Field::Pattern => 0,
            Field::Real | Field::Integer => 1,
            Field::Complex => 2,
        }
    }
}

/// Reads a Matrix Market file from any reader.
pub fn read_matrix_market<R: Read>(reader: R) -> Result<Coo, SparseError> {
    let reader = BufReader::new(reader);
    let mut lines = reader.lines().enumerate();

    // Header line.
    let (line_no, header) = loop {
        match lines.next() {
            Some((no, line)) => {
                let line = line?;
                if !line.trim().is_empty() {
                    break (no + 1, line);
                }
            }
            None => return Err(SparseError::Parse(0, "empty file".into())),
        }
    };
    let tokens: Vec<String> = header
        .split_whitespace()
        .map(|t| t.to_ascii_lowercase())
        .collect();
    if tokens.len() < 5 || tokens[0] != "%%matrixmarket" || tokens[1] != "matrix" {
        return Err(SparseError::Parse(
            line_no,
            format!("bad header: {header:?}"),
        ));
    }
    if tokens[2] != "coordinate" {
        return Err(SparseError::Parse(
            line_no,
            format!("unsupported format {:?} (only coordinate)", tokens[2]),
        ));
    }
    let field = match tokens[3].as_str() {
        "pattern" => Field::Pattern,
        "real" => Field::Real,
        "integer" => Field::Integer,
        "complex" => Field::Complex,
        other => {
            return Err(SparseError::Parse(
                line_no,
                format!("unsupported field {other:?}"),
            ))
        }
    };
    let symmetry = match tokens[4].as_str() {
        "general" => Symmetry::General,
        "symmetric" => Symmetry::Symmetric,
        "skew-symmetric" => Symmetry::SkewSymmetric,
        // Hermitian patterns behave like symmetric ones.
        "hermitian" => Symmetry::Symmetric,
        other => {
            return Err(SparseError::Parse(
                line_no,
                format!("unsupported symmetry {other:?}"),
            ))
        }
    };

    // Size line (first non-comment, non-blank line).
    let (size_line_no, size_line) = loop {
        match lines.next() {
            Some((no, line)) => {
                let line = line?;
                let trimmed = line.trim();
                if !trimmed.is_empty() && !trimmed.starts_with('%') {
                    break (no + 1, line);
                }
            }
            None => return Err(SparseError::Parse(line_no, "missing size line".into())),
        }
    };
    let dims: Vec<&str> = size_line.split_whitespace().collect();
    if dims.len() != 3 {
        return Err(SparseError::Parse(
            size_line_no,
            format!("size line must have 3 fields, got {:?}", size_line),
        ));
    }
    let parse_dim = |s: &str, no: usize| -> Result<u64, SparseError> {
        s.parse::<u64>()
            .map_err(|e| SparseError::Parse(no, format!("bad integer {s:?}: {e}")))
    };
    let m = parse_dim(dims[0], size_line_no)?;
    let n = parse_dim(dims[1], size_line_no)?;
    let declared_nnz = parse_dim(dims[2], size_line_no)? as usize;
    if m >= Idx::MAX as u64 || n >= Idx::MAX as u64 {
        return Err(SparseError::Parse(
            size_line_no,
            "dimensions exceed u32 index space".into(),
        ));
    }

    // Cap the pre-allocation: a hostile size line must not be able to
    // reserve gigabytes before a single entry has been parsed. The vector
    // still grows to whatever the file actually contains.
    let mut entries: Vec<(Idx, Idx)> = Vec::with_capacity(declared_nnz.min(1 << 22));
    let mut seen = 0usize;
    let expected_tokens = 2 + field.value_tokens();
    for (no, line) in lines {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('%') {
            continue;
        }
        let tokens: Vec<&str> = trimmed.split_whitespace().collect();
        if tokens.len() < expected_tokens {
            return Err(SparseError::TruncatedEntry {
                line: no + 1,
                expected: expected_tokens,
                found: tokens.len(),
            });
        }
        if tokens.len() > expected_tokens {
            return Err(SparseError::Parse(
                no + 1,
                format!(
                    "{} trailing token(s) after a complete entry",
                    tokens.len() - expected_tokens
                ),
            ));
        }
        let i = parse_dim(tokens[0], no + 1)?;
        let j = parse_dim(tokens[1], no + 1)?;
        // Coordinates are 1-based; zero smells like 0-based indexing and is
        // rejected rather than silently shifted.
        if i == 0 || j == 0 || i > m || j > n {
            return Err(SparseError::EntryOutOfRange {
                line: no + 1,
                row: i,
                col: j,
                rows: m,
                cols: n,
            });
        }
        let (i0, j0) = ((i - 1) as Idx, (j - 1) as Idx);
        entries.push((i0, j0));
        match symmetry {
            Symmetry::General => {}
            Symmetry::Symmetric if i0 != j0 => entries.push((j0, i0)),
            Symmetry::SkewSymmetric if i0 != j0 => entries.push((j0, i0)),
            _ => {}
        }
        seen += 1;
    }
    if seen != declared_nnz {
        return Err(SparseError::CountMismatch {
            declared: declared_nnz,
            found: seen,
        });
    }
    Coo::new(m as Idx, n as Idx, entries)
}

/// Reads a Matrix Market file from disk.
pub fn read_matrix_market_file<P: AsRef<Path>>(path: P) -> Result<Coo, SparseError> {
    let file = std::fs::File::open(path)?;
    read_matrix_market(file)
}

/// Writes a matrix as `matrix coordinate pattern general`.
pub fn write_matrix_market<W: Write>(a: &Coo, mut writer: W) -> Result<(), SparseError> {
    writeln!(writer, "%%MatrixMarket matrix coordinate pattern general")?;
    writeln!(writer, "% written by mg-sparse")?;
    writeln!(writer, "{} {} {}", a.rows(), a.cols(), a.nnz())?;
    for (i, j) in a.iter() {
        writeln!(writer, "{} {}", i + 1, j + 1)?;
    }
    Ok(())
}

/// Writes a matrix to a `.mtx` file on disk.
pub fn write_matrix_market_file<P: AsRef<Path>>(a: &Coo, path: P) -> Result<(), SparseError> {
    let file = std::fs::File::create(path)?;
    write_matrix_market(a, std::io::BufWriter::new(file))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_pattern_general() {
        let text = "%%MatrixMarket matrix coordinate pattern general\n\
                    % a comment\n\
                    3 4 3\n\
                    1 1\n\
                    2 3\n\
                    3 4\n";
        let a = read_matrix_market(text.as_bytes()).unwrap();
        assert_eq!(a.rows(), 3);
        assert_eq!(a.cols(), 4);
        assert_eq!(a.entries(), &[(0, 0), (1, 2), (2, 3)]);
    }

    #[test]
    fn reads_real_values_and_discards_them() {
        let text = "%%MatrixMarket matrix coordinate real general\n\
                    2 2 2\n\
                    1 2 3.5\n\
                    2 1 -1e-3\n";
        let a = read_matrix_market(text.as_bytes()).unwrap();
        assert_eq!(a.entries(), &[(0, 1), (1, 0)]);
    }

    #[test]
    fn expands_symmetric_storage() {
        let text = "%%MatrixMarket matrix coordinate real symmetric\n\
                    3 3 3\n\
                    1 1 1.0\n\
                    2 1 2.0\n\
                    3 2 3.0\n";
        let a = read_matrix_market(text.as_bytes()).unwrap();
        assert_eq!(a.entries(), &[(0, 0), (0, 1), (1, 0), (1, 2), (2, 1)]);
        assert!(a.is_pattern_symmetric());
    }

    #[test]
    fn rejects_bad_header_and_counts() {
        assert!(read_matrix_market("garbage\n1 1 0\n".as_bytes()).is_err());
        let short = "%%MatrixMarket matrix coordinate pattern general\n2 2 2\n1 1\n";
        assert!(read_matrix_market(short.as_bytes()).is_err());
        let oob = "%%MatrixMarket matrix coordinate pattern general\n2 2 1\n3 1\n";
        assert!(read_matrix_market(oob.as_bytes()).is_err());
    }

    #[test]
    fn roundtrip() {
        let a = Coo::new(5, 3, vec![(0, 0), (2, 1), (4, 2), (1, 1)]).unwrap();
        let mut buf = Vec::new();
        write_matrix_market(&a, &mut buf).unwrap();
        let b = read_matrix_market(buf.as_slice()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn roundtrip_empty() {
        let a = Coo::empty(2, 2);
        let mut buf = Vec::new();
        write_matrix_market(&a, &mut buf).unwrap();
        let b = read_matrix_market(buf.as_slice()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn reads_skew_symmetric_and_hermitian() {
        let skew = "%%MatrixMarket matrix coordinate real skew-symmetric\n\
                    3 3 2\n\
                    2 1 1.0\n\
                    3 1 -2.0\n";
        let a = read_matrix_market(skew.as_bytes()).unwrap();
        // Off-diagonal entries mirrored: 4 stored nonzeros.
        assert_eq!(a.nnz(), 4);
        assert!(a.contains(0, 1) && a.contains(1, 0));

        let herm = "%%MatrixMarket matrix coordinate complex hermitian\n\
                    2 2 2\n\
                    1 1 1.0 0.0\n\
                    2 1 0.5 -0.5\n";
        let b = read_matrix_market(herm.as_bytes()).unwrap();
        assert_eq!(b.nnz(), 3);
        assert!(b.is_pattern_symmetric());
    }

    #[test]
    fn rejects_missing_value_tokens() {
        let bad = "%%MatrixMarket matrix coordinate real general\n\
                   2 2 1\n\
                   1 1\n";
        assert!(read_matrix_market(bad.as_bytes()).is_err());
        let bad_complex = "%%MatrixMarket matrix coordinate complex general\n\
                           2 2 1\n\
                           1 1 1.0\n";
        assert!(read_matrix_market(bad_complex.as_bytes()).is_err());
    }

    #[test]
    fn rejects_unsupported_formats() {
        let arr = "%%MatrixMarket matrix array real general\n2 2\n1\n2\n3\n4\n";
        assert!(read_matrix_market(arr.as_bytes()).is_err());
        let field = "%%MatrixMarket matrix coordinate quaternion general\n1 1 0\n";
        assert!(read_matrix_market(field.as_bytes()).is_err());
    }

    #[test]
    fn tolerates_blank_lines_and_comments_between_entries() {
        let text = "%%MatrixMarket matrix coordinate pattern general\n\
                    \n\
                    % leading comment\n\
                    2 2 2\n\
                    % interior comment\n\
                    1 1\n\
                    \n\
                    2 2\n";
        let a = read_matrix_market(text.as_bytes()).unwrap();
        assert_eq!(a.nnz(), 2);
    }

    #[test]
    fn rejects_zero_based_indices_with_a_typed_error() {
        for (bad_entry, row, col) in [("0 1", 0, 1), ("1 0", 1, 0)] {
            let text =
                format!("%%MatrixMarket matrix coordinate pattern general\n2 2 1\n{bad_entry}\n");
            match read_matrix_market(text.as_bytes()) {
                Err(SparseError::EntryOutOfRange {
                    line,
                    row: r,
                    col: c,
                    rows,
                    cols,
                }) => {
                    assert_eq!((line, r, c, rows, cols), (3, row, col, 2, 2));
                }
                other => panic!("expected EntryOutOfRange, got {other:?}"),
            }
        }
    }

    #[test]
    fn rejects_out_of_range_indices_with_a_typed_error() {
        for bad_entry in ["3 1", "1 4", "99 99"] {
            let text =
                format!("%%MatrixMarket matrix coordinate pattern general\n2 3 1\n{bad_entry}\n");
            assert!(matches!(
                read_matrix_market(text.as_bytes()),
                Err(SparseError::EntryOutOfRange { line: 3, .. })
            ));
        }
    }

    #[test]
    fn rejects_truncated_entry_lines_with_a_typed_error() {
        // Pattern entry missing its column.
        let text = "%%MatrixMarket matrix coordinate pattern general\n2 2 1\n1\n";
        assert_eq!(
            read_matrix_market(text.as_bytes()),
            Err(SparseError::TruncatedEntry {
                line: 3,
                expected: 2,
                found: 1
            })
        );
        // Real entry missing its value.
        let text = "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1\n";
        assert_eq!(
            read_matrix_market(text.as_bytes()),
            Err(SparseError::TruncatedEntry {
                line: 3,
                expected: 3,
                found: 2
            })
        );
        // Complex entry with only one value token.
        let text = "%%MatrixMarket matrix coordinate complex general\n2 2 1\n1 1 0.5\n";
        assert_eq!(
            read_matrix_market(text.as_bytes()),
            Err(SparseError::TruncatedEntry {
                line: 3,
                expected: 4,
                found: 3
            })
        );
    }

    #[test]
    fn rejects_trailing_tokens_on_entry_lines() {
        let text = "%%MatrixMarket matrix coordinate pattern general\n2 2 1\n1 1 7\n";
        assert!(matches!(
            read_matrix_market(text.as_bytes()),
            Err(SparseError::Parse(3, _))
        ));
    }

    #[test]
    fn rejects_count_mismatches_with_a_typed_error() {
        // Fewer entries than declared.
        let text = "%%MatrixMarket matrix coordinate pattern general\n3 3 3\n1 1\n2 2\n";
        assert_eq!(
            read_matrix_market(text.as_bytes()),
            Err(SparseError::CountMismatch {
                declared: 3,
                found: 2
            })
        );
        // More entries than declared.
        let text = "%%MatrixMarket matrix coordinate pattern general\n3 3 1\n1 1\n2 2\n";
        assert_eq!(
            read_matrix_market(text.as_bytes()),
            Err(SparseError::CountMismatch {
                declared: 1,
                found: 2
            })
        );
    }

    #[test]
    fn hostile_declared_count_does_not_preallocate() {
        // A size line declaring 10^15 entries must fail with a count
        // mismatch (quickly), not attempt the allocation up front.
        let text = "%%MatrixMarket matrix coordinate pattern general\n2 2 1000000000000000\n1 1\n";
        assert_eq!(
            read_matrix_market(text.as_bytes()),
            Err(SparseError::CountMismatch {
                declared: 1_000_000_000_000_000,
                found: 1
            })
        );
    }

    #[test]
    fn rejects_non_numeric_coordinates() {
        let text = "%%MatrixMarket matrix coordinate pattern general\n2 2 1\nx 1\n";
        assert!(matches!(
            read_matrix_market(text.as_bytes()),
            Err(SparseError::Parse(3, _))
        ));
        let negative = "%%MatrixMarket matrix coordinate pattern general\n2 2 1\n-1 1\n";
        assert!(matches!(
            read_matrix_market(negative.as_bytes()),
            Err(SparseError::Parse(3, _))
        ));
    }

    #[test]
    fn duplicate_entries_collapse() {
        let text = "%%MatrixMarket matrix coordinate pattern general\n\
                    2 2 3\n\
                    1 1\n\
                    1 1\n\
                    2 2\n";
        let a = read_matrix_market(text.as_bytes()).unwrap();
        assert_eq!(a.nnz(), 2);
    }

    #[test]
    fn file_roundtrip_on_disk() {
        let a = Coo::new(4, 4, vec![(0, 1), (3, 2)]).unwrap();
        let path = std::env::temp_dir().join("mg_sparse_io_test.mtx");
        write_matrix_market_file(&a, &path).unwrap();
        let b = read_matrix_market_file(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(a, b);
    }
}

//! Pattern statistics and the paper's matrix classification.
//!
//! The evaluation in §IV splits the test set into three classes:
//! rectangular matrices, structurally symmetric matrices (pattern symmetry
//! exactly one), and square non-symmetric matrices (pattern symmetry below
//! one). [`PatternStats`] computes the quantities needed for that split plus
//! a few extra descriptors used by the generators' self-tests.

use crate::{Coo, Idx};

/// The three matrix classes of the paper's evaluation (§IV).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MatrixClass {
    /// `m != n`.
    Rectangular,
    /// Square with nonzero-pattern symmetry equal to one.
    Symmetric,
    /// Square with nonzero-pattern symmetry below one.
    SquareNonSymmetric,
}

impl std::fmt::Display for MatrixClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MatrixClass::Rectangular => write!(f, "rectangular"),
            MatrixClass::Symmetric => write!(f, "symmetric"),
            MatrixClass::SquareNonSymmetric => write!(f, "square-nonsymmetric"),
        }
    }
}

/// Summary statistics of a nonzero pattern.
#[derive(Debug, Clone, PartialEq)]
pub struct PatternStats {
    /// Number of rows `m`.
    pub rows: Idx,
    /// Number of columns `n`.
    pub cols: Idx,
    /// Number of nonzeros `N`.
    pub nnz: usize,
    /// Fraction of off-diagonal nonzeros whose transposed position is also a
    /// nonzero; `1.0` for empty or diagonal-only square patterns.
    pub pattern_symmetry: f64,
    /// Rows with no nonzeros.
    pub empty_rows: Idx,
    /// Columns with no nonzeros.
    pub empty_cols: Idx,
    /// Largest number of nonzeros in any row.
    pub max_row_nnz: Idx,
    /// Largest number of nonzeros in any column.
    pub max_col_nnz: Idx,
    /// Average nonzeros per row.
    pub avg_row_nnz: f64,
    /// Number of stored diagonal entries (square part only).
    pub diagonal_nnz: Idx,
}

impl PatternStats {
    /// Computes all statistics in `O(N log N)` (dominated by symmetry probes).
    pub fn compute(a: &Coo) -> Self {
        let row_counts = a.row_counts();
        let col_counts = a.col_counts();
        let empty_rows = row_counts.iter().filter(|&&c| c == 0).count() as Idx;
        let empty_cols = col_counts.iter().filter(|&&c| c == 0).count() as Idx;
        let max_row_nnz = row_counts.iter().copied().max().unwrap_or(0);
        let max_col_nnz = col_counts.iter().copied().max().unwrap_or(0);
        let diagonal_nnz = a.iter().filter(|&(i, j)| i == j).count() as Idx;

        let pattern_symmetry = if !a.is_square() {
            0.0
        } else {
            let off_diag = a.nnz() as u64 - diagonal_nnz as u64;
            if off_diag == 0 {
                1.0
            } else {
                let matched = a
                    .iter()
                    .filter(|&(i, j)| i != j && a.contains(j, i))
                    .count() as u64;
                matched as f64 / off_diag as f64
            }
        };

        PatternStats {
            rows: a.rows(),
            cols: a.cols(),
            nnz: a.nnz(),
            pattern_symmetry,
            empty_rows,
            empty_cols,
            max_row_nnz,
            max_col_nnz,
            avg_row_nnz: if a.rows() == 0 {
                0.0
            } else {
                a.nnz() as f64 / a.rows() as f64
            },
            diagonal_nnz,
        }
    }

    /// The paper's three-way classification.
    pub fn class(&self) -> MatrixClass {
        if self.rows != self.cols {
            MatrixClass::Rectangular
        } else if self.pattern_symmetry >= 1.0 {
            MatrixClass::Symmetric
        } else {
            MatrixClass::SquareNonSymmetric
        }
    }

    /// Density `N / (m·n)`; `0` for degenerate dimensions.
    pub fn density(&self) -> f64 {
        let cells = self.rows as f64 * self.cols as f64;
        if cells == 0.0 {
            0.0
        } else {
            self.nnz as f64 / cells
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classifies_rectangular() {
        let a = Coo::new(2, 3, vec![(0, 0), (1, 2)]).unwrap();
        let s = PatternStats::compute(&a);
        assert_eq!(s.class(), MatrixClass::Rectangular);
        assert_eq!(s.pattern_symmetry, 0.0);
    }

    #[test]
    fn classifies_symmetric() {
        let a = Coo::new(3, 3, vec![(0, 1), (1, 0), (1, 2), (2, 1), (0, 0)]).unwrap();
        let s = PatternStats::compute(&a);
        assert_eq!(s.pattern_symmetry, 1.0);
        assert_eq!(s.class(), MatrixClass::Symmetric);
    }

    #[test]
    fn classifies_square_nonsymmetric() {
        let a = Coo::new(3, 3, vec![(0, 1), (1, 2), (2, 1)]).unwrap();
        let s = PatternStats::compute(&a);
        assert!(s.pattern_symmetry < 1.0);
        assert_eq!(s.class(), MatrixClass::SquareNonSymmetric);
    }

    #[test]
    fn diagonal_only_square_counts_as_symmetric() {
        let a = Coo::new(2, 2, vec![(0, 0), (1, 1)]).unwrap();
        let s = PatternStats::compute(&a);
        assert_eq!(s.pattern_symmetry, 1.0);
        assert_eq!(s.class(), MatrixClass::Symmetric);
        assert_eq!(s.diagonal_nnz, 2);
    }

    #[test]
    fn counts_empties_and_maxima() {
        let a = Coo::new(4, 4, vec![(0, 0), (0, 1), (0, 2), (2, 0)]).unwrap();
        let s = PatternStats::compute(&a);
        assert_eq!(s.empty_rows, 2);
        assert_eq!(s.empty_cols, 1);
        assert_eq!(s.max_row_nnz, 3);
        assert_eq!(s.max_col_nnz, 2);
    }

    #[test]
    fn half_symmetric_fraction() {
        // Off-diagonal entries: (0,1),(1,0) matched pair; (0,2) unmatched.
        let a = Coo::new(3, 3, vec![(0, 1), (1, 0), (0, 2)]).unwrap();
        let s = PatternStats::compute(&a);
        assert!((s.pattern_symmetry - 2.0 / 3.0).abs() < 1e-12);
    }
}

//! # mg-sparse — sparse matrix substrate
//!
//! This crate provides everything the medium-grain reproduction needs to talk
//! about sparse matrices *as data to be distributed*, rather than as numerical
//! operators:
//!
//! * [`Coo`] — the canonical pattern-only triplet representation every other
//!   crate builds on (row-major sorted, deduplicated),
//! * [`Csr`] / [`Csc`] — compressed views used by model builders and metrics,
//! * [`io`] — Matrix Market reading and writing,
//! * [`stats`] — pattern statistics and the paper's three-way matrix
//!   classification (rectangular / structurally symmetric / square
//!   non-symmetric),
//! * [`gen`] — deterministic synthetic matrix generators standing in for the
//!   University of Florida collection,
//! * [`partition`] — nonzero partitions, the communication-volume metric
//!   (eqn (3) of the paper) and the load-imbalance constraint (eqn (1)),
//! * [`bsp`] — greedy vector distribution and the BSP cost metric used in
//!   Table II of the paper,
//! * [`spmv`] — a step-by-step parallel SpMV *simulator* that counts every
//!   communicated word, used to validate the closed-form volume metric.
//!
//! Matrix *values* are deliberately not stored: the partitioning problem is a
//! property of the nonzero pattern alone. Where values are needed (the SpMV
//! simulator), they are synthesised deterministically from the coordinates.

pub mod bsp;
pub mod coo;
pub mod csr;
pub mod dist_io;
pub mod gen;
pub mod io;
pub mod partition;
pub mod spmv;
pub mod spy;
pub mod stats;

pub use bsp::{bsp_cost, BspCost, VectorDistribution};
pub use coo::Coo;
pub use csr::{Csc, Csr};
pub use partition::{
    col_lambdas, communication_volume, load_imbalance, max_part_size, part_budget, row_lambdas,
    NonzeroPartition, PartitionError,
};
pub use spy::{spy, spy_partitioned, CommunicationReport};
pub use stats::{MatrixClass, PatternStats};

/// Index type used for rows, columns and nonzero ids throughout the workspace.
///
/// `u32` keeps the hot data structures (pin lists, gain buckets) at half the
/// cache footprint of `usize` on 64-bit targets; the paper's largest inputs
/// (5·10⁶ nonzeros) are far below the 2³²−1 limit, which constructors assert.
pub type Idx = u32;

/// Errors arising while constructing or reading matrices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SparseError {
    /// An entry's row index is out of bounds: `(row, rows)`.
    RowOutOfBounds(Idx, Idx),
    /// An entry's column index is out of bounds: `(col, cols)`.
    ColOutOfBounds(Idx, Idx),
    /// More nonzeros than the index type can address.
    TooManyNonzeros(usize),
    /// A Matrix Market parse problem, with a line number and message.
    Parse(usize, String),
    /// A Matrix Market entry whose 1-based coordinate falls outside the
    /// declared dimensions. Zero coordinates (0-based indexing smuggled
    /// into a 1-based format) land here too.
    EntryOutOfRange {
        /// 1-based line number of the offending entry.
        line: usize,
        /// Row coordinate as written in the file (1-based).
        row: u64,
        /// Column coordinate as written in the file (1-based).
        col: u64,
        /// Declared number of rows.
        rows: u64,
        /// Declared number of columns.
        cols: u64,
    },
    /// A Matrix Market entry line with fewer tokens than its field type
    /// requires (missing coordinate or value tokens).
    TruncatedEntry {
        /// 1-based line number of the offending entry.
        line: usize,
        /// Tokens the field type requires (coordinates + values).
        expected: usize,
        /// Tokens actually present.
        found: usize,
    },
    /// The file stores a different number of entries than its size line
    /// declares.
    CountMismatch {
        /// Entry count declared on the size line.
        declared: usize,
        /// Entry lines actually present.
        found: usize,
    },
    /// An I/O failure converted to a string (keeps the error type `Clone`).
    Io(String),
}

impl std::fmt::Display for SparseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SparseError::RowOutOfBounds(r, m) => {
                write!(f, "row index {r} out of bounds for {m} rows")
            }
            SparseError::ColOutOfBounds(c, n) => {
                write!(f, "column index {c} out of bounds for {n} columns")
            }
            SparseError::TooManyNonzeros(nnz) => {
                write!(f, "{nnz} nonzeros exceed the u32 index space")
            }
            SparseError::Parse(line, msg) => write!(f, "parse error on line {line}: {msg}"),
            SparseError::EntryOutOfRange {
                line,
                row,
                col,
                rows,
                cols,
            } => write!(
                f,
                "entry ({row}, {col}) on line {line} out of range for a {rows}x{cols} matrix \
                 (coordinates are 1-based)"
            ),
            SparseError::TruncatedEntry {
                line,
                expected,
                found,
            } => write!(
                f,
                "truncated entry on line {line}: expected {expected} token(s), found {found}"
            ),
            SparseError::CountMismatch { declared, found } => {
                write!(f, "size line declares {declared} entries, file has {found}")
            }
            SparseError::Io(msg) => write!(f, "I/O error: {msg}"),
        }
    }
}

impl std::error::Error for SparseError {}

impl From<std::io::Error> for SparseError {
    fn from(e: std::io::Error) -> Self {
        SparseError::Io(e.to_string())
    }
}

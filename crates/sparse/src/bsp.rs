//! Vector distribution and the BSP cost metric of Table II.
//!
//! The paper defines the BSP (communication) cost as "the sum of the maximum
//! number of data words that are sent or received by a single processor
//! during the fan-in and fan-out phase". Computing it requires choosing an
//! owner for every input-vector entry `v_j` and every output-vector entry
//! `u_i`; like Mondriaan, we pick owners greedily among the processors that
//! already hold nonzeros of the corresponding column/row, balancing the
//! per-processor send/receive loads.

use crate::partition::NonzeroPartition;
use crate::{Coo, Csc, Csr, Idx};

/// Owner of each input (`v_j`, per column) and output (`u_i`, per row)
/// vector entry. Entries of empty columns/rows are owned by part 0 by
/// convention; they never cause communication.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VectorDistribution {
    /// `input_owner[j]` owns `v_j`.
    pub input_owner: Vec<Idx>,
    /// `output_owner[i]` owns `u_i`.
    pub output_owner: Vec<Idx>,
}

/// Per-phase h-relations and their sum, in data words.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BspCost {
    /// `max_q max(send_q, recv_q)` during the fan-out (input-vector) phase.
    pub fanout_h: u64,
    /// `max_q max(send_q, recv_q)` during the fan-in (partial-sum) phase.
    pub fanin_h: u64,
}

impl BspCost {
    /// The paper's Table II metric: fan-out plus fan-in h-relation.
    pub fn total(&self) -> u64 {
        self.fanout_h + self.fanin_h
    }
}

/// Collects, for each line (row or column), the distinct parts owning its
/// nonzeros. `lines[x]` is sorted by first-seen order; uses a stamp array so
/// the whole pass is `O(N + lines)`.
fn owners_per_line<'a>(
    num_lines: Idx,
    num_parts: Idx,
    entries: impl Iterator<Item = (Idx, &'a [Idx])>,
    partition: &NonzeroPartition,
) -> Vec<Vec<Idx>> {
    let mut owners: Vec<Vec<Idx>> = vec![Vec::new(); num_lines as usize];
    let mut stamp = vec![Idx::MAX; num_parts as usize];
    for (line, nonzero_ids) in entries {
        for &k in nonzero_ids {
            let p = partition.part_of(k as usize);
            if stamp[p as usize] != line {
                stamp[p as usize] = line;
                owners[line as usize].push(p);
            }
        }
    }
    owners
}

/// Greedily assigns each vector entry to one of the parts owning nonzeros in
/// its line, processing lines with the largest `λ` first and picking the
/// candidate with the lightest current load.
///
/// `owner_load_weight` is the load the owner takes on for a line with `λ`
/// parts (λ−1 sends for fan-out, λ−1 receives for fan-in); every other owner
/// takes on one unit of the complementary direction.
fn greedy_assign(
    owners: &[Vec<Idx>],
    num_parts: Idx,
    owner_is_sender: bool,
) -> (Vec<Idx>, Vec<u64>, Vec<u64>) {
    let mut send = vec![0u64; num_parts as usize];
    let mut recv = vec![0u64; num_parts as usize];
    let mut owner_of = vec![0 as Idx; owners.len()];

    let mut order: Vec<usize> = (0..owners.len()).collect();
    order.sort_unstable_by_key(|&x| std::cmp::Reverse(owners[x].len()));

    for &line in &order {
        let cands = &owners[line];
        if cands.is_empty() {
            continue; // empty line: owner 0, no communication
        }
        let lambda = cands.len() as u64;
        // The owner pays (λ−1) in its direction; pick the candidate whose
        // resulting maximum load is smallest.
        let best = *cands
            .iter()
            .min_by_key(|&&q| {
                let (s, r) = (send[q as usize], recv[q as usize]);
                let (s, r) = if owner_is_sender {
                    (s + lambda - 1, r)
                } else {
                    (s, r + lambda - 1)
                };
                (s.max(r), s + r)
            })
            .expect("non-empty candidate list");
        owner_of[line] = best;
        for &q in cands {
            if q == best {
                if owner_is_sender {
                    send[q as usize] += lambda - 1;
                } else {
                    recv[q as usize] += lambda - 1;
                }
            } else if owner_is_sender {
                recv[q as usize] += 1;
            } else {
                send[q as usize] += 1;
            }
        }
    }
    (owner_of, send, recv)
}

/// Builds a greedy vector distribution for a partitioned matrix.
pub fn distribute_vectors(a: &Coo, partition: &NonzeroPartition) -> VectorDistribution {
    let p = partition.num_parts();
    let csr = Csr::from_coo(a);
    let csc = Csc::from_coo(a);

    let row_ids: Vec<Vec<Idx>> = (0..a.rows())
        .map(|i| csr.row_nonzero_ids(i).map(|k| k as Idx).collect())
        .collect();
    let row_owners = owners_per_line(
        a.rows(),
        p,
        row_ids.iter().enumerate().map(|(i, v)| (i as Idx, &v[..])),
        partition,
    );
    let col_owners = owners_per_line(
        a.cols(),
        p,
        (0..a.cols()).map(|j| (j, csc.col_nonzero_ids(j))),
        partition,
    );

    let (input_owner, _, _) = greedy_assign(&col_owners, p, true);
    let (output_owner, _, _) = greedy_assign(&row_owners, p, false);
    VectorDistribution {
        input_owner,
        output_owner,
    }
}

/// Computes the BSP cost (per-phase h-relations) of a partitioned matrix
/// under the greedy vector distribution.
pub fn bsp_cost(a: &Coo, partition: &NonzeroPartition) -> BspCost {
    bsp_cost_with(a, partition, None)
}

/// BSP cost under a caller-provided vector distribution (owners must own
/// nonzeros of their line whenever the line is non-empty).
pub fn bsp_cost_with(
    a: &Coo,
    partition: &NonzeroPartition,
    distribution: Option<&VectorDistribution>,
) -> BspCost {
    let p = partition.num_parts();
    let csr = Csr::from_coo(a);
    let csc = Csc::from_coo(a);

    let owned;
    let dist = match distribution {
        Some(d) => d,
        None => {
            owned = distribute_vectors(a, partition);
            &owned
        }
    };
    assert_eq!(dist.input_owner.len(), a.cols() as usize);
    assert_eq!(dist.output_owner.len(), a.rows() as usize);

    let mut send = vec![0u64; p as usize];
    let mut recv = vec![0u64; p as usize];
    let mut stamp = vec![Idx::MAX; p as usize];

    // Fan-out: the owner of v_j sends one word to every other part that has
    // nonzeros in column j.
    for j in 0..a.cols() {
        let owner = dist.input_owner[j as usize];
        for &k in csc.col_nonzero_ids(j) {
            let q = partition.part_of(k as usize);
            if stamp[q as usize] != j {
                stamp[q as usize] = j;
                if q != owner {
                    send[owner as usize] += 1;
                    recv[q as usize] += 1;
                }
            }
        }
    }
    let fanout_h = send
        .iter()
        .zip(&recv)
        .map(|(&s, &r)| s.max(r))
        .max()
        .unwrap_or(0);

    // Fan-in: every part holding nonzeros of row i (except the owner of u_i)
    // sends its partial sum to that owner.
    send.iter_mut().for_each(|s| *s = 0);
    recv.iter_mut().for_each(|r| *r = 0);
    stamp.iter_mut().for_each(|s| *s = Idx::MAX);
    for i in 0..a.rows() {
        let owner = dist.output_owner[i as usize];
        for k in csr.row_nonzero_ids(i) {
            let q = partition.part_of(k);
            if stamp[q as usize] != i {
                stamp[q as usize] = i;
                if q != owner {
                    send[q as usize] += 1;
                    recv[owner as usize] += 1;
                }
            }
        }
    }
    let fanin_h = send
        .iter()
        .zip(&recv)
        .map(|(&s, &r)| s.max(r))
        .max()
        .unwrap_or(0);

    BspCost { fanout_h, fanin_h }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::communication_volume;

    fn dense(n: Idx) -> Coo {
        let entries: Vec<(Idx, Idx)> = (0..n).flat_map(|i| (0..n).map(move |j| (i, j))).collect();
        Coo::new(n, n, entries).unwrap()
    }

    #[test]
    fn single_part_has_zero_cost() {
        let a = dense(4);
        let p = NonzeroPartition::trivial(a.nnz());
        let cost = bsp_cost(&a, &p);
        assert_eq!(cost.total(), 0);
    }

    #[test]
    fn owners_are_actual_owners() {
        let a = dense(4);
        let parts: Vec<Idx> = a.iter().map(|(i, _)| if i < 2 { 0 } else { 1 }).collect();
        let p = NonzeroPartition::new(2, parts).unwrap();
        let d = distribute_vectors(&a, &p);
        // Row split: every column has both parts, rows have one.
        for i in 0..4u32 {
            let expect = if i < 2 { 0 } else { 1 };
            assert_eq!(d.output_owner[i as usize], expect);
        }
        for j in 0..4u32 {
            assert!(d.input_owner[j as usize] < 2);
        }
    }

    #[test]
    fn row_split_fanout_balances() {
        // Dense 4x4 split by rows: volume = 4 columns × 1 = 4. Each column's
        // v_j owner sends one word; greedy spreads owners 2/2, so each part
        // sends 2 and receives 2: fanout_h = 2, fanin_h = 0.
        let a = dense(4);
        let parts: Vec<Idx> = a.iter().map(|(i, _)| if i < 2 { 0 } else { 1 }).collect();
        let p = NonzeroPartition::new(2, parts).unwrap();
        assert_eq!(communication_volume(&a, &p), 4);
        let cost = bsp_cost(&a, &p);
        assert_eq!(cost.fanin_h, 0);
        assert_eq!(cost.fanout_h, 2);
        assert_eq!(cost.total(), 2);
    }

    #[test]
    fn h_relation_bounded_by_volume() {
        let a = dense(5);
        let parts: Vec<Idx> = a.iter().map(|(i, j)| (i + j) % 2).collect();
        let p = NonzeroPartition::new(2, parts).unwrap();
        let v = communication_volume(&a, &p);
        let cost = bsp_cost(&a, &p);
        assert!(cost.total() <= v);
        assert!(cost.total() > 0);
    }

    #[test]
    fn empty_lines_ignored() {
        let a = Coo::new(3, 3, vec![(0, 0), (0, 2)]).unwrap();
        let parts = vec![0, 1];
        let p = NonzeroPartition::new(2, parts).unwrap();
        let cost = bsp_cost(&a, &p);
        // Row 0 is cut (volume 1); columns are singletons.
        assert_eq!(cost.fanin_h, 1);
        assert_eq!(cost.fanout_h, 0);
    }
}

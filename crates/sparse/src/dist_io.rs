//! Distributed Matrix Market I/O — persisting *partitioned* matrices.
//!
//! Mondriaan writes its output as a "distributed matrix": the ordinary
//! coordinate body re-sorted by owning processor, prefixed with the part
//! count and a `Pstart` array marking where each processor's nonzeros
//! begin. We implement the same scheme:
//!
//! ```text
//! %%MatrixMarket distributed-matrix coordinate pattern general
//! m n nnz p
//! Pstart[0]
//! ...
//! Pstart[p]          (p+1 lines; Pstart[p] == nnz)
//! i j                (nnz lines, 1-based, grouped by processor)
//! ```

use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

use crate::partition::NonzeroPartition;
use crate::{Coo, Idx, SparseError};

/// Writes a partitioned matrix in distributed Matrix Market form.
pub fn write_distributed<W: Write>(
    a: &Coo,
    partition: &NonzeroPartition,
    mut writer: W,
) -> Result<(), SparseError> {
    partition
        .check_against(a)
        .map_err(|e| SparseError::Io(e.to_string()))?;
    let p = partition.num_parts();
    writeln!(
        writer,
        "%%MatrixMarket distributed-matrix coordinate pattern general"
    )?;
    writeln!(writer, "% written by mg-sparse")?;
    writeln!(writer, "{} {} {} {}", a.rows(), a.cols(), a.nnz(), p)?;

    let members = partition.part_members();
    let mut start = 0usize;
    writeln!(writer, "0")?;
    for part in &members {
        start += part.len();
        writeln!(writer, "{start}")?;
    }
    for part in &members {
        for &k in part {
            let (i, j) = a.entry(k as usize);
            writeln!(writer, "{} {}", i + 1, j + 1)?;
        }
    }
    Ok(())
}

/// Writes a partitioned matrix to a file.
pub fn write_distributed_file<P: AsRef<Path>>(
    a: &Coo,
    partition: &NonzeroPartition,
    path: P,
) -> Result<(), SparseError> {
    let file = std::fs::File::create(path)?;
    write_distributed(a, partition, std::io::BufWriter::new(file))
}

/// Reads a distributed matrix, returning the (canonical) matrix and the
/// nonzero partition.
pub fn read_distributed<R: Read>(reader: R) -> Result<(Coo, NonzeroPartition), SparseError> {
    let reader = BufReader::new(reader);
    let mut lines = reader
        .lines()
        .enumerate()
        .map(|(no, l)| (no + 1, l))
        .filter(|(_, l)| {
            l.as_ref()
                .map(|s| {
                    let t = s.trim();
                    !t.is_empty() && (!t.starts_with('%') || t.starts_with("%%"))
                })
                .unwrap_or(true)
        });

    let (no, header) = lines
        .next()
        .ok_or_else(|| SparseError::Parse(0, "empty file".into()))?;
    let header = header?;
    let lowered = header.to_ascii_lowercase();
    if !lowered.starts_with("%%matrixmarket distributed-matrix coordinate pattern") {
        return Err(SparseError::Parse(
            no,
            format!("not a distributed pattern matrix: {header:?}"),
        ));
    }

    let (no, size) = lines
        .next()
        .ok_or_else(|| SparseError::Parse(no, "missing size line".into()))?;
    let size = size?;
    let fields: Vec<u64> = size
        .split_whitespace()
        .map(|t| {
            t.parse::<u64>()
                .map_err(|e| SparseError::Parse(no, format!("bad integer {t:?}: {e}")))
        })
        .collect::<Result<_, _>>()?;
    if fields.len() != 4 {
        return Err(SparseError::Parse(
            no,
            "size line must be `m n nnz p`".into(),
        ));
    }
    let (m, n, nnz, p) = (fields[0], fields[1], fields[2] as usize, fields[3]);
    if m >= Idx::MAX as u64 || n >= Idx::MAX as u64 || p >= Idx::MAX as u64 || p == 0 {
        return Err(SparseError::Parse(no, "dimensions out of range".into()));
    }

    let mut pstart = Vec::with_capacity(p as usize + 1);
    for _ in 0..=p {
        let (no, line) = lines
            .next()
            .ok_or_else(|| SparseError::Parse(no, "missing Pstart line".into()))?;
        let line = line?;
        let v: u64 = line
            .trim()
            .parse()
            .map_err(|e| SparseError::Parse(no, format!("bad Pstart {line:?}: {e}")))?;
        pstart.push(v as usize);
    }
    if pstart[0] != 0 || *pstart.last().expect("non-empty") != nnz {
        return Err(SparseError::Parse(
            no,
            format!("Pstart must run from 0 to nnz, got {pstart:?}"),
        ));
    }
    if pstart.windows(2).any(|w| w[0] > w[1]) {
        return Err(SparseError::Parse(
            no,
            "Pstart must be non-decreasing".into(),
        ));
    }

    let mut entries: Vec<(Idx, Idx)> = Vec::with_capacity(nnz);
    let mut owners: Vec<Idx> = Vec::with_capacity(nnz);
    let mut part = 0usize;
    for _ in 0..nnz {
        let (no, line) = lines
            .next()
            .ok_or_else(|| SparseError::Parse(no, "missing entry line".into()))?;
        let line = line?;
        let mut it = line.split_whitespace();
        let parse = |t: Option<&str>| -> Result<u64, SparseError> {
            t.ok_or_else(|| SparseError::Parse(no, "short entry line".into()))?
                .parse::<u64>()
                .map_err(|e| SparseError::Parse(no, format!("bad index: {e}")))
        };
        let i = parse(it.next())?;
        let j = parse(it.next())?;
        if i == 0 || j == 0 || i > m || j > n {
            return Err(SparseError::Parse(
                no,
                format!("coordinate ({i}, {j}) out of bounds"),
            ));
        }
        while part < p as usize && entries.len() >= pstart[part + 1] {
            part += 1;
        }
        entries.push(((i - 1) as Idx, (j - 1) as Idx));
        owners.push(part as Idx);
    }

    // Canonicalise: sort entries (with owners attached) row-major.
    let mut pairs: Vec<((Idx, Idx), Idx)> = entries.into_iter().zip(owners).collect();
    pairs.sort_unstable();
    pairs.dedup_by_key(|(e, _)| *e);
    let (entries, owners): (Vec<_>, Vec<_>) = pairs.into_iter().unzip();
    let coo = Coo::from_sorted_unchecked(m as Idx, n as Idx, entries);
    let partition = NonzeroPartition::new(p as Idx, owners)
        .map_err(|e| SparseError::Parse(no, e.to_string()))?;
    Ok((coo, partition))
}

/// Reads a distributed matrix from a file.
pub fn read_distributed_file<P: AsRef<Path>>(
    path: P,
) -> Result<(Coo, NonzeroPartition), SparseError> {
    let file = std::fs::File::open(path)?;
    read_distributed(file)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::communication_volume;

    fn sample() -> (Coo, NonzeroPartition) {
        let a = Coo::new(3, 4, vec![(0, 0), (0, 2), (1, 1), (2, 0), (2, 3)]).unwrap();
        let p = NonzeroPartition::new(3, vec![2, 0, 1, 0, 2]).unwrap();
        (a, p)
    }

    #[test]
    fn roundtrip_preserves_matrix_and_partition() {
        let (a, p) = sample();
        let mut buf = Vec::new();
        write_distributed(&a, &p, &mut buf).unwrap();
        let (a2, p2) = read_distributed(buf.as_slice()).unwrap();
        assert_eq!(a, a2);
        assert_eq!(p, p2);
        assert_eq!(communication_volume(&a, &p), communication_volume(&a2, &p2));
    }

    #[test]
    fn body_is_grouped_by_processor() {
        let (a, p) = sample();
        let mut buf = Vec::new();
        write_distributed(&a, &p, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        // header, comment, size, 4 Pstart lines, then entries.
        assert!(lines[0].contains("distributed-matrix"));
        assert_eq!(lines[2], "3 4 5 3");
        let pstart: Vec<usize> = lines[3..7].iter().map(|l| l.parse().unwrap()).collect();
        assert_eq!(pstart, vec![0, 2, 3, 5]);
    }

    #[test]
    fn rejects_inconsistent_pstart() {
        let text = "%%MatrixMarket distributed-matrix coordinate pattern general\n\
                    2 2 2 2\n0\n1\n3\n1 1\n2 2\n";
        assert!(read_distributed(text.as_bytes()).is_err());
    }

    #[test]
    fn rejects_plain_matrix_market() {
        let text = "%%MatrixMarket matrix coordinate pattern general\n2 2 1\n1 1\n";
        assert!(read_distributed(text.as_bytes()).is_err());
    }

    #[test]
    fn empty_parts_are_fine() {
        let a = Coo::new(2, 2, vec![(0, 0), (1, 1)]).unwrap();
        let p = NonzeroPartition::new(3, vec![2, 2]).unwrap();
        let mut buf = Vec::new();
        write_distributed(&a, &p, &mut buf).unwrap();
        let (a2, p2) = read_distributed(buf.as_slice()).unwrap();
        assert_eq!(a, a2);
        assert_eq!(p, p2);
    }

    #[test]
    fn file_roundtrip() {
        let (a, p) = sample();
        let path = std::env::temp_dir().join("mg_dist_io_test.mtx");
        write_distributed_file(&a, &p, &path).unwrap();
        let (a2, p2) = read_distributed_file(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(a, a2);
        assert_eq!(p, p2);
    }
}

//! Terminal "spy plots" of (partitioned) sparse matrices — the ASCII
//! analogue of the paper's Fig 3 pictures.
//!
//! Large matrices are downsampled onto a character grid; each cell shows
//! the dominant part among the nonzeros it covers (digits/letters per
//! part), or `·` for empty regions. Unpartitioned patterns use `x`.

use crate::partition::NonzeroPartition;
use crate::{Coo, Idx};

/// Characters used for parts 0-61; parts beyond that wrap around.
const PART_GLYPHS: &[u8] = b"0123456789abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ";

/// Renders the nonzero pattern of `a` on a grid of at most
/// `max_width × max_height` characters.
pub fn spy(a: &Coo, max_width: usize, max_height: usize) -> String {
    render(a, None, max_width, max_height)
}

/// Renders a partitioned matrix: each cell shows the part owning the
/// majority of its covered nonzeros.
pub fn spy_partitioned(
    a: &Coo,
    partition: &NonzeroPartition,
    max_width: usize,
    max_height: usize,
) -> String {
    render(a, Some(partition), max_width, max_height)
}

fn render(
    a: &Coo,
    partition: Option<&NonzeroPartition>,
    max_width: usize,
    max_height: usize,
) -> String {
    let width = (a.cols() as usize).clamp(1, max_width.max(1));
    let height = (a.rows() as usize).clamp(1, max_height.max(1));
    let parts = partition.map_or(1, |p| p.num_parts() as usize);

    // counts[cell][part] with a flat layout.
    let mut counts = vec![0u32; width * height * parts];
    for (k, &(i, j)) in a.entries().iter().enumerate() {
        let y = (i as u64 * height as u64 / a.rows().max(1) as u64) as usize;
        let x = (j as u64 * width as u64 / a.cols().max(1) as u64) as usize;
        let q = partition.map_or(0, |p| p.part_of(k) as usize);
        counts[(y * width + x) * parts + q] += 1;
    }

    let mut out = String::with_capacity(height * (width + 3));
    out.push('┌');
    out.push_str(&"─".repeat(width));
    out.push_str("┐\n");
    for y in 0..height {
        out.push('│');
        for x in 0..width {
            let cell = &counts[(y * width + x) * parts..(y * width + x + 1) * parts];
            let total: u32 = cell.iter().sum();
            if total == 0 {
                out.push('·');
            } else if partition.is_none() {
                out.push('x');
            } else {
                let best = cell
                    .iter()
                    .enumerate()
                    .max_by_key(|&(_, &c)| c)
                    .map(|(q, _)| q)
                    .unwrap_or(0);
                out.push(PART_GLYPHS[best % PART_GLYPHS.len()] as char);
            }
        }
        out.push_str("│\n");
    }
    out.push('└');
    out.push_str(&"─".repeat(width));
    out.push_str("┘\n");
    out
}

/// A per-line communication breakdown of a partitioned matrix — the
/// numbers behind the volume metric, for reports and debugging.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommunicationReport {
    /// Number of rows with λ ≥ 2 (cut rows).
    pub cut_rows: Idx,
    /// Number of columns with λ ≥ 2.
    pub cut_cols: Idx,
    /// Σ (λ−1) over rows — fan-in volume.
    pub row_volume: u64,
    /// Σ (λ−1) over columns — fan-out volume.
    pub col_volume: u64,
    /// Largest λ over all rows and columns.
    pub max_lambda: Idx,
    /// Nonzeros per part.
    pub part_sizes: Vec<u64>,
}

impl CommunicationReport {
    /// Computes the breakdown.
    pub fn compute(a: &Coo, partition: &NonzeroPartition) -> Self {
        let rl = crate::partition::row_lambdas(a, partition);
        let cl = crate::partition::col_lambdas(a, partition);
        CommunicationReport {
            cut_rows: rl.iter().filter(|&&l| l >= 2).count() as Idx,
            cut_cols: cl.iter().filter(|&&l| l >= 2).count() as Idx,
            row_volume: rl.iter().map(|&l| (l as u64).saturating_sub(1)).sum(),
            col_volume: cl.iter().map(|&l| (l as u64).saturating_sub(1)).sum(),
            max_lambda: rl.iter().chain(cl.iter()).copied().max().unwrap_or(0),
            part_sizes: partition.part_sizes(),
        }
    }

    /// Total volume (must equal [`crate::communication_volume`]).
    pub fn total_volume(&self) -> u64 {
        self.row_volume + self.col_volume
    }

    /// Renders a compact text summary.
    pub fn render(&self) -> String {
        format!(
            "volume {} (rows {} + cols {}), cut rows {}, cut cols {}, \
             max λ {}, part sizes {:?}",
            self.total_volume(),
            self.row_volume,
            self.col_volume,
            self.cut_rows,
            self.cut_cols,
            self.max_lambda,
            self.part_sizes
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::communication_volume;

    fn dense(n: Idx) -> Coo {
        let entries: Vec<(Idx, Idx)> = (0..n).flat_map(|i| (0..n).map(move |j| (i, j))).collect();
        Coo::new(n, n, entries).unwrap()
    }

    #[test]
    fn spy_shows_pattern() {
        let a = Coo::new(3, 3, vec![(0, 0), (1, 1), (2, 2)]).unwrap();
        let art = spy(&a, 10, 10);
        assert_eq!(art.matches('x').count(), 3);
        assert!(art.contains('·'));
    }

    #[test]
    fn spy_partitioned_uses_part_glyphs() {
        let a = dense(4);
        let parts: Vec<Idx> = a.iter().map(|(i, _)| (i >= 2) as Idx).collect();
        let p = NonzeroPartition::new(2, parts).unwrap();
        let art = spy_partitioned(&a, &p, 8, 8);
        assert!(art.contains('0'));
        assert!(art.contains('1'));
        assert!(!art.contains('x'));
    }

    #[test]
    fn downsampling_keeps_grid_bounds() {
        let a = dense(40);
        let p = NonzeroPartition::trivial(a.nnz());
        let art = spy_partitioned(&a, &p, 10, 6);
        // 6 content lines + 2 border lines.
        assert_eq!(art.lines().count(), 8);
        for line in art.lines().skip(1).take(6) {
            assert_eq!(line.chars().count(), 12); // │ + 10 + │
        }
    }

    #[test]
    fn report_matches_volume_metric() {
        let a = dense(5);
        let parts: Vec<Idx> = a.iter().map(|(i, j)| (i + j) % 3).collect();
        let p = NonzeroPartition::new(3, parts).unwrap();
        let report = CommunicationReport::compute(&a, &p);
        assert_eq!(report.total_volume(), communication_volume(&a, &p));
        assert_eq!(report.cut_rows, 5);
        assert_eq!(report.cut_cols, 5);
        assert!(report.max_lambda <= 3);
        assert_eq!(report.part_sizes.iter().sum::<u64>() as usize, a.nnz());
        assert!(report.render().contains("volume"));
    }

    #[test]
    fn single_part_report_is_clean() {
        let a = dense(3);
        let p = NonzeroPartition::trivial(a.nnz());
        let report = CommunicationReport::compute(&a, &p);
        assert_eq!(report.total_volume(), 0);
        assert_eq!(report.cut_rows, 0);
        assert_eq!(report.max_lambda, 1);
    }
}

//! Quickstart: bipartition a sparse matrix with the medium-grain method.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Generates a 2D grid Laplacian (a typical PDE matrix), bipartitions it
//! with the paper's medium-grain method plus iterative refinement, and
//! compares the communication volume against the classical 1D "localbest"
//! approach — the comparison at the heart of the paper.

use mediumgrain::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // A 64×64 grid Laplacian: 4096×4096, ~20k nonzeros.
    let a = mediumgrain::sparse::gen::laplacian_2d(64, 64);
    println!(
        "matrix: {}x{}, {} nonzeros ({})",
        a.rows(),
        a.cols(),
        a.nnz(),
        PatternStats::compute(&a).class()
    );

    let config = PartitionerConfig::mondriaan_like();
    let epsilon = 0.03; // allow 3% load imbalance, as in the paper

    for method in [
        Method::LocalBest { refine: false },
        Method::MediumGrain { refine: false },
        Method::MediumGrain { refine: true },
    ] {
        let mut rng = StdRng::seed_from_u64(2014);
        let result = method.bipartition(&a, epsilon, &config, &mut rng);
        println!(
            "{:>6}: volume = {:>5}, imbalance = {:.4}, IR iterations = {}",
            method.label(),
            result.volume,
            load_imbalance(&result.partition),
            result.ir_iterations,
        );
    }

    // The partition is just a part id per nonzero — ready to drive an
    // actual data distribution.
    let mut rng = StdRng::seed_from_u64(2014);
    let result = Method::MediumGrain { refine: true }.bipartition(&a, epsilon, &config, &mut rng);
    let sizes = result.partition.part_sizes();
    println!(
        "final split: {} / {} nonzeros, volume {} words",
        sizes[0], sizes[1], result.volume
    );
}

//! Scaling study: partition one matrix for p = 2 … 64 processors by
//! recursive bisection (how Mondriaan applies the medium-grain method in
//! practice, and how Table II's p = 64 numbers are produced).
//!
//! ```text
//! cargo run --release --example multiway_scaling
//! ```

use mediumgrain::core::kway_refine;
use mediumgrain::prelude::*;
use mediumgrain::sparse::{gen, part_budget};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // A 3D Laplacian — the classic strong-scaling workload.
    let a = gen::laplacian_3d(16, 16, 16);
    println!("matrix: {}x{}, {} nonzeros\n", a.rows(), a.cols(), a.nnz());
    println!(
        "{:>4} {:>10} {:>10} {:>10} {:>10} {:>12}",
        "p", "volume", "+kway", "BSP cost", "max part", "imbalance"
    );

    let config = PartitionerConfig::mondriaan_like();
    for p in [2u32, 4, 8, 16, 32, 64] {
        let mut rng = StdRng::seed_from_u64(1234);
        let result = recursive_bisection(
            &a,
            p,
            0.03,
            Method::MediumGrain { refine: true },
            &config,
            &mut rng,
        );
        // Post-process with the direct k-way greedy refiner (an extension
        // beyond the paper): moves single nonzeros between arbitrary parts.
        let refined = kway_refine(&a, &result.partition, part_budget(a.nnz(), p, 0.03), 8);
        assert!(refined.volume <= result.volume);
        let cost = bsp_cost(&a, &refined.partition);
        let max = refined.partition.part_sizes().into_iter().max().unwrap();
        println!(
            "{:>4} {:>10} {:>10} {:>10} {:>10} {:>11.4}",
            p,
            result.volume,
            refined.volume,
            cost.total(),
            max,
            load_imbalance(&refined.partition),
        );
    }
    println!("\nvolume grows sublinearly with p; per-part load stays within ε.");
}

//! Algorithm 2 as a standalone post-processing step.
//!
//! ```text
//! cargo run --release --example refine_anything
//! ```
//!
//! The paper's iterative refinement is method-agnostic: it takes *any*
//! bipartition of the nonzeros and monotonically reduces its communication
//! volume. Here we refine three progressively better starting points —
//! a naive block split, a 1D row-net partition, and the medium-grain
//! method's own output — and watch each converge.

use mediumgrain::core::{iterative_refinement, RefineOptions};
use mediumgrain::prelude::*;
use mediumgrain::sparse::gen;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let a = gen::laplacian_2d_9pt(48, 48);
    println!("matrix: {}x{}, {} nonzeros\n", a.rows(), a.cols(), a.nnz());
    let config = PartitionerConfig::mondriaan_like();
    let opts = RefineOptions::default();

    // 1. A naive split: first half of the nonzeros to part 0 (respects the
    //    balance constraint but ignores structure entirely... almost: the
    //    canonical row-major order makes it a crude row split).
    let naive = NonzeroPartition::new(2, (0..a.nnz()).map(|k| (k >= a.nnz() / 2) as u32).collect())
        .unwrap();
    report(&a, "naive half split", &naive, &opts);

    // 2. A 1D method's output.
    let mut rng = StdRng::seed_from_u64(4);
    let rn = Method::RowNet { refine: false }.bipartition(&a, 0.03, &config, &mut rng);
    report(&a, "row-net output", &rn.partition, &opts);

    // 3. The medium-grain method's own output (IR is then the paper's
    //    MG+IR configuration).
    let mut rng = StdRng::seed_from_u64(4);
    let mg = Method::MediumGrain { refine: false }.bipartition(&a, 0.03, &config, &mut rng);
    report(&a, "medium-grain output", &mg.partition, &opts);
}

fn report(
    a: &mediumgrain::sparse::Coo,
    label: &str,
    partition: &NonzeroPartition,
    opts: &RefineOptions,
) {
    let before = communication_volume(a, partition);
    let refined = iterative_refinement(a, partition, 0.03, opts);
    println!(
        "{label:>20}: volume {before:>5} -> {:<5} ({} KL runs, imbalance {:.4})",
        refined.volume,
        refined.iterations,
        load_imbalance(&refined.partition)
    );
    assert!(refined.volume <= before, "Algorithm 2 must be monotone");
}

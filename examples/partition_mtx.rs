//! Partition a Matrix Market file with every method of the paper.
//!
//! ```text
//! cargo run --release --example partition_mtx [path/to/matrix.mtx]
//! ```
//!
//! Without an argument, a demonstration matrix is generated, written to a
//! temporary `.mtx`, and read back — exercising the full I/O round trip a
//! downstream user would perform with real collection matrices.

use mediumgrain::prelude::*;
use mediumgrain::sparse::io::{read_matrix_market_file, write_matrix_market_file};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let path = match std::env::args().nth(1) {
        Some(p) => std::path::PathBuf::from(p),
        None => {
            let mut rng = StdRng::seed_from_u64(99);
            let demo = mediumgrain::sparse::gen::rmat(10, 8_000, 0.57, 0.19, 0.19, &mut rng);
            let path = std::env::temp_dir().join("mediumgrain_demo.mtx");
            write_matrix_market_file(&demo, &path).expect("write demo matrix");
            println!("no file given; wrote demo matrix to {}", path.display());
            path
        }
    };

    let a = match read_matrix_market_file(&path) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("cannot read {}: {e}", path.display());
            std::process::exit(1);
        }
    };
    let stats = PatternStats::compute(&a);
    println!(
        "{}: {}x{}, {} nonzeros, class {}, pattern symmetry {:.2}\n",
        path.display(),
        a.rows(),
        a.cols(),
        a.nnz(),
        stats.class(),
        stats.pattern_symmetry
    );

    let config = PartitionerConfig::mondriaan_like();
    println!("{:>7} {:>9} {:>10}", "method", "volume", "imbalance");
    for method in [
        Method::RowNet { refine: false },
        Method::ColumnNet { refine: false },
        Method::LocalBest { refine: false },
        Method::FineGrain { refine: false },
        Method::MediumGrain { refine: false },
        Method::MediumGrain { refine: true },
    ] {
        let mut rng = StdRng::seed_from_u64(555);
        let result = method.bipartition(&a, 0.03, &config, &mut rng);
        println!(
            "{:>7} {:>9} {:>10.4}",
            method.label(),
            result.volume,
            load_imbalance(&result.partition)
        );
    }
}

//! The paper's motivating workload: distribute a sparse matrix over two
//! processors and run the four-step parallel SpMV (fan-out, local multiply,
//! fan-in, summation), counting every communicated word.
//!
//! ```text
//! cargo run --release --example spmv_pipeline
//! ```
//!
//! Demonstrates that the communication-volume metric the partitioner
//! minimises (eqn (3)) is *exactly* the number of words the multiplication
//! transfers, and shows the per-processor send/receive balance behind the
//! BSP cost of Table II.

use mediumgrain::prelude::*;
use mediumgrain::sparse::spmv::{serial_spmv, simulate_spmv};
use mediumgrain::sparse::{bsp::distribute_vectors, gen};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // A power-law web-like matrix: hub rows/columns make 1D methods bleed.
    let mut rng = StdRng::seed_from_u64(7);
    let a = gen::scale_free_directed(2000, 24_000, 0.8, 1.1, &mut rng);
    println!("matrix: {}x{}, {} nonzeros", a.rows(), a.cols(), a.nnz());

    let config = PartitionerConfig::mondriaan_like();
    let result = Method::MediumGrain { refine: true }.bipartition(&a, 0.03, &config, &mut rng);
    println!("medium-grain volume: {} words", result.volume);

    // Distribute the input and output vectors greedily among nonzero
    // owners, then actually run the distributed multiplication.
    let distribution = distribute_vectors(&a, &result.partition);
    let report = simulate_spmv(&a, &result.partition, Some(&distribution));

    println!(
        "simulated words: fan-out {} + fan-in {} = {}",
        report.fanout_words,
        report.fanin_words,
        report.total_words()
    );
    assert_eq!(
        report.total_words(),
        result.volume,
        "the simulator must transfer exactly the metric volume"
    );

    for q in 0..2 {
        println!(
            "  processor {q}: {} flops, fan-out send/recv {}/{}, fan-in send/recv {}/{}",
            report.local_flops[q],
            report.fanout_send[q],
            report.fanout_recv[q],
            report.fanin_send[q],
            report.fanin_recv[q],
        );
    }

    let cost = bsp_cost(&a, &result.partition);
    println!(
        "BSP cost: fan-out h = {}, fan-in h = {}, total = {}",
        cost.fanout_h,
        cost.fanin_h,
        cost.total()
    );

    // And the answer is still right.
    assert_eq!(report.output, serial_spmv(&a));
    println!("distributed result matches the serial SpMV exactly");
}

//! Integration tests for p-way recursive bisection and the Table II
//! metrics across crates.

use mediumgrain::prelude::*;
use mediumgrain::sparse::gen;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn sixteen_way_partition_is_valid_and_balanced() {
    let a = gen::laplacian_2d(32, 32);
    let config = PartitionerConfig::mondriaan_like();
    let mut rng = StdRng::seed_from_u64(3);
    let r = recursive_bisection(
        &a,
        16,
        0.03,
        Method::MediumGrain { refine: true },
        &config,
        &mut rng,
    );
    assert_eq!(r.partition.num_parts(), 16);
    let sizes = r.partition.part_sizes();
    assert_eq!(sizes.iter().sum::<u64>() as usize, a.nnz());
    assert!(sizes.iter().all(|&s| s > 0), "{sizes:?}");
    // Per-level budgeting keeps the global constraint approximately; allow
    // rounding slack on this moderate size.
    assert!(
        load_imbalance(&r.partition) <= 0.03 + 0.03,
        "imbalance {}",
        load_imbalance(&r.partition)
    );
    assert_eq!(r.volume, communication_volume(&a, &r.partition));
}

#[test]
fn multiway_volume_equals_simulated_words() {
    use mediumgrain::sparse::spmv::simulate_spmv;
    let mut rng = StdRng::seed_from_u64(4);
    let a = gen::chung_lu_symmetric(300, 3600, 0.9, &mut rng);
    let config = PartitionerConfig::patoh_like();
    let r = recursive_bisection(
        &a,
        8,
        0.03,
        Method::MediumGrain { refine: true },
        &config,
        &mut rng,
    );
    let report = simulate_spmv(&a, &r.partition, None);
    assert_eq!(report.total_words(), r.volume);
}

#[test]
fn bsp_cost_scales_down_with_more_parts_on_balanced_comm() {
    // The h-relation is a max over processors: with more parts, each part
    // sends/receives a smaller share even as total volume grows.
    let a = gen::laplacian_3d(12, 12, 12);
    let config = PartitionerConfig::mondriaan_like();
    let mut cost2 = 0;
    let mut cost16 = 0;
    for seed in 0..3 {
        let mut rng = StdRng::seed_from_u64(seed);
        let r2 = recursive_bisection(
            &a,
            2,
            0.03,
            Method::MediumGrain { refine: true },
            &config,
            &mut rng,
        );
        cost2 += bsp_cost(&a, &r2.partition).total();
        let mut rng = StdRng::seed_from_u64(seed);
        let r16 = recursive_bisection(
            &a,
            16,
            0.03,
            Method::MediumGrain { refine: true },
            &config,
            &mut rng,
        );
        cost16 += bsp_cost(&a, &r16.partition).total();
    }
    // Not guaranteed in theory, but very robust on a 3D Laplacian: the
    // 2-way cut concentrates all traffic on two processors.
    assert!(
        cost16 < cost2 * 3,
        "p=16 h-relation ({cost16}) should not blow up vs p=2 ({cost2})"
    );
}

#[test]
fn every_method_supports_multiway() {
    let a = gen::laplacian_2d(20, 20);
    let config = PartitionerConfig::mondriaan_like();
    for method in [
        Method::LocalBest { refine: false },
        Method::FineGrain { refine: false },
        Method::MediumGrain { refine: false },
    ] {
        let mut rng = StdRng::seed_from_u64(8);
        let r = recursive_bisection(&a, 5, 0.1, method, &config, &mut rng);
        assert_eq!(r.partition.num_parts(), 5);
        let sizes = r.partition.part_sizes();
        assert_eq!(sizes.iter().sum::<u64>() as usize, a.nnz());
        assert!(sizes.iter().all(|&s| s > 0), "{method}: {sizes:?}");
    }
}

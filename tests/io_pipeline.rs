//! End-to-end I/O integration: write a generated matrix as Matrix Market,
//! read it back, partition it, and persist the partition — the workflow a
//! downstream user runs against real collection files.

use mediumgrain::prelude::*;
use mediumgrain::sparse::gen;
use mediumgrain::sparse::io::{read_matrix_market, write_matrix_market};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn mtx_roundtrip_preserves_partitioning_behaviour() {
    let mut rng = StdRng::seed_from_u64(31);
    let original = gen::rmat(8, 1500, 0.57, 0.19, 0.19, &mut rng);

    let mut buf = Vec::new();
    write_matrix_market(&original, &mut buf).unwrap();
    let reread = read_matrix_market(buf.as_slice()).unwrap();
    assert_eq!(original, reread);

    // Partitioning the re-read matrix with the same seed gives the exact
    // same result: the canonical form survives serialisation.
    let cfg = PartitionerConfig::mondriaan_like();
    let a = Method::MediumGrain { refine: true }.bipartition(
        &original,
        0.03,
        &cfg,
        &mut StdRng::seed_from_u64(8),
    );
    let b = Method::MediumGrain { refine: true }.bipartition(
        &reread,
        0.03,
        &cfg,
        &mut StdRng::seed_from_u64(8),
    );
    assert_eq!(a.partition, b.partition);
    assert_eq!(a.volume, b.volume);
}

#[test]
fn symmetric_storage_expands_before_partitioning() {
    // A symmetric-storage file must behave like its expanded pattern.
    let text = "%%MatrixMarket matrix coordinate pattern symmetric\n\
                4 4 6\n\
                1 1\n2 1\n3 2\n4 3\n4 4\n3 1\n";
    let a = read_matrix_market(text.as_bytes()).unwrap();
    assert!(a.is_pattern_symmetric());
    assert_eq!(PatternStats::compute(&a).class(), MatrixClass::Symmetric);
    let cfg = PartitionerConfig::mondriaan_like();
    let mut rng = StdRng::seed_from_u64(2);
    let r = Method::MediumGrain { refine: true }.bipartition(&a, 0.5, &cfg, &mut rng);
    assert_eq!(r.volume, communication_volume(&a, &r.partition));
}

//! Property tests of the paper's central theorem through the facade:
//! eqn (6) — the medium-grain hypergraph cut equals the communication
//! volume of the mapped 2D partition — plus the degeneration claims of
//! §III-A (all-Ac ⇒ row-net, all-Ar ⇒ column-net).

use mediumgrain::core::{MediumGrainModel, Split};
use mediumgrain::hypergraph::{column_net_model, row_net_model, VertexBipartition};
use mediumgrain::prelude::*;
use mediumgrain::sparse::Coo;
use proptest::prelude::*;

fn arb_coo() -> impl Strategy<Value = Coo> {
    mg_test_support::strategies::arb_coo(15, 1, 59)
}

proptest! {
    /// eqn (6) for arbitrary splits and arbitrary bipartitions.
    #[test]
    fn medium_grain_cut_is_the_communication_volume(
        a in arb_coo(),
        split_bits in proptest::collection::vec(any::<bool>(), 60),
        side_bits in proptest::collection::vec(any::<bool>(), 64),
    ) {
        let in_row: Vec<bool> = (0..a.nnz()).map(|k| split_bits[k % split_bits.len()]).collect();
        let split = Split::from_assignment(in_row);
        let model = MediumGrainModel::build(&a, &split);
        let nv = model.hypergraph.num_vertices() as usize;
        let sides: Vec<u8> = (0..nv).map(|v| side_bits[v % side_bits.len()] as u8).collect();
        let cut = VertexBipartition::new(&model.hypergraph, sides.clone()).cut_weight();
        let partition = model.to_nonzero_partition(&a, &sides);
        prop_assert_eq!(cut, communication_volume(&a, &partition));
    }

    /// §III-A: with every nonzero in Ac, the medium-grain model *is* the
    /// row-net model — same cut for the corresponding assignment.
    #[test]
    fn all_ac_split_degenerates_to_row_net(
        a in arb_coo(),
        side_bits in proptest::collection::vec(any::<bool>(), 16),
    ) {
        let model = MediumGrainModel::build(&a, &Split::all_columns(a.nnz()));
        let rn = row_net_model(&a);
        // Column j of A ↔ medium-grain col vertex (when non-empty) and
        // row-net vertex j. Assign both from the same bit stream.
        let rn_sides: Vec<u8> = (0..a.cols() as usize)
            .map(|j| side_bits[j % side_bits.len()] as u8)
            .collect();
        let mg_sides: Vec<u8> = (0..a.cols())
            .filter_map(|j| model.col_vertex(j).map(|_| rn_sides[j as usize]))
            .collect();
        let mg_cut = VertexBipartition::new(&model.hypergraph, mg_sides).cut_weight();
        let rn_cut = VertexBipartition::new(&rn.hypergraph, rn_sides.clone()).cut_weight();
        prop_assert_eq!(mg_cut, rn_cut);
        // And both equal the volume of the column partitioning of A.
        let np = rn.to_nonzero_partition(&a, &rn_sides);
        prop_assert_eq!(rn_cut, communication_volume(&a, &np));
    }

    /// §III-A, symmetric claim: all-Ar ⇒ column-net model.
    #[test]
    fn all_ar_split_degenerates_to_column_net(
        a in arb_coo(),
        side_bits in proptest::collection::vec(any::<bool>(), 16),
    ) {
        let model = MediumGrainModel::build(&a, &Split::all_rows(a.nnz()));
        let cn = column_net_model(&a);
        let cn_sides: Vec<u8> = (0..a.rows() as usize)
            .map(|i| side_bits[i % side_bits.len()] as u8)
            .collect();
        let mg_sides: Vec<u8> = (0..a.rows())
            .filter_map(|i| model.row_vertex(i).map(|_| cn_sides[i as usize]))
            .collect();
        let mg_cut = VertexBipartition::new(&model.hypergraph, mg_sides).cut_weight();
        let cn_cut = VertexBipartition::new(&cn.hypergraph, cn_sides).cut_weight();
        prop_assert_eq!(mg_cut, cn_cut);
    }

    /// Load-balance bookkeeping of §III-A: the number of nonzeros in part
    /// k of A equals the vertex weight of side k in the hypergraph of B.
    #[test]
    fn group_weights_count_nonzeros(
        a in arb_coo(),
        split_bits in proptest::collection::vec(any::<bool>(), 60),
        side_bits in proptest::collection::vec(any::<bool>(), 64),
    ) {
        let in_row: Vec<bool> = (0..a.nnz()).map(|k| split_bits[k % split_bits.len()]).collect();
        let split = Split::from_assignment(in_row);
        let model = MediumGrainModel::build(&a, &split);
        let nv = model.hypergraph.num_vertices() as usize;
        let sides: Vec<u8> = (0..nv).map(|v| side_bits[v % side_bits.len()] as u8).collect();
        let bp = VertexBipartition::new(&model.hypergraph, sides.clone());
        let partition = model.to_nonzero_partition(&a, &sides);
        let sizes = partition.part_sizes();
        prop_assert_eq!(bp.part_weight(0), sizes[0]);
        prop_assert_eq!(bp.part_weight(1), sizes[1]);
    }
}

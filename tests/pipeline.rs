//! Cross-crate integration tests: the full pipeline from generated matrix
//! through models, multilevel partitioning, refinement and metrics,
//! exercised through the public facade exactly as a downstream user would.

use mediumgrain::core::{iterative_refinement, RefineOptions};
use mediumgrain::prelude::*;
use mediumgrain::sparse::gen;
use rand::rngs::StdRng;
use rand::SeedableRng;

const EPSILON: f64 = 0.03;

fn methods_under_test() -> Vec<Method> {
    vec![
        Method::RowNet { refine: false },
        Method::ColumnNet { refine: false },
        Method::LocalBest { refine: false },
        Method::LocalBest { refine: true },
        Method::FineGrain { refine: false },
        Method::FineGrain { refine: true },
        Method::MediumGrain { refine: false },
        Method::MediumGrain { refine: true },
    ]
}

fn workload() -> Vec<(&'static str, mediumgrain::sparse::Coo)> {
    let mut rng = StdRng::seed_from_u64(77);
    vec![
        ("laplace2d", gen::laplacian_2d(24, 24)),
        ("laplace3d", gen::laplacian_3d(8, 8, 8)),
        ("chunglu", gen::chung_lu_symmetric(300, 3000, 0.9, &mut rng)),
        ("scalefree", gen::scale_free_directed(250, 2500, 0.8, 1.2, &mut rng)),
        ("rect_tall", gen::erdos_renyi(400, 80, 3200, &mut rng)),
        ("termdoc", gen::term_document(500, 160, 7, &mut rng)),
        ("arrow", gen::arrow(200, 4)),
        ("rmat", gen::rmat(9, 4000, 0.57, 0.19, 0.19, &mut rng)),
    ]
}

#[test]
fn every_method_yields_valid_partitions_across_the_workload() {
    let config = PartitionerConfig::mondriaan_like();
    for (name, a) in workload() {
        for method in methods_under_test() {
            let mut rng = StdRng::seed_from_u64(1);
            let result = method.bipartition(&a, EPSILON, &config, &mut rng);
            result.partition.check_against(&a).unwrap();
            assert_eq!(
                result.volume,
                communication_volume(&a, &result.partition),
                "{name}/{method}: reported volume is stale"
            );
            assert!(
                load_imbalance(&result.partition) <= EPSILON + 1e-9,
                "{name}/{method}: imbalance {}",
                load_imbalance(&result.partition)
            );
        }
    }
}

#[test]
fn medium_grain_beats_1d_on_2d_structured_matrices() {
    // The paper's headline claim, on the workloads its introduction
    // motivates (square matrices with 2D structure). Averaged over seeds
    // to be robust.
    let config = PartitionerConfig::mondriaan_like();
    let a = gen::arrow(300, 5);
    let mut mg_total = 0u64;
    let mut lb_total = 0u64;
    for seed in 0..5 {
        let mut rng = StdRng::seed_from_u64(seed);
        mg_total += Method::MediumGrain { refine: true }
            .bipartition(&a, EPSILON, &config, &mut rng)
            .volume;
        let mut rng = StdRng::seed_from_u64(seed);
        lb_total += Method::LocalBest { refine: false }
            .bipartition(&a, EPSILON, &config, &mut rng)
            .volume;
    }
    assert!(
        mg_total < lb_total,
        "medium-grain ({mg_total}) should beat localbest ({lb_total}) on the arrow matrix"
    );
}

#[test]
fn refinement_reduces_or_keeps_volume_for_all_methods() {
    let config = PartitionerConfig::mondriaan_like();
    for (name, a) in workload() {
        for refine in [
            Method::LocalBest { refine: false },
            Method::FineGrain { refine: false },
            Method::MediumGrain { refine: false },
        ] {
            let mut rng = StdRng::seed_from_u64(9);
            let base = refine.bipartition(&a, EPSILON, &config, &mut rng);
            let refined =
                iterative_refinement(&a, &base.partition, EPSILON, &RefineOptions::default());
            assert!(
                refined.volume <= base.volume,
                "{name}/{refine}: IR worsened {} -> {}",
                base.volume,
                refined.volume
            );
        }
    }
}

#[test]
fn spmv_simulation_agrees_with_metric_for_every_method() {
    use mediumgrain::sparse::spmv::{serial_spmv, simulate_spmv};
    let config = PartitionerConfig::mondriaan_like();
    let mut rng = StdRng::seed_from_u64(5);
    let a = gen::erdos_renyi(120, 90, 1500, &mut rng);
    for method in methods_under_test() {
        let result = method.bipartition(&a, EPSILON, &config, &mut rng);
        let report = simulate_spmv(&a, &result.partition, None);
        assert_eq!(report.total_words(), result.volume, "{method}");
        assert_eq!(report.output, serial_spmv(&a), "{method}");
    }
}

#[test]
fn facade_prelude_covers_the_quickstart_path() {
    // Mirrors the README quickstart so the docs cannot rot silently.
    let a = gen::laplacian_2d(32, 32);
    let mut rng = StdRng::seed_from_u64(42);
    let result = Method::MediumGrain { refine: true }.bipartition(
        &a,
        EPSILON,
        &PartitionerConfig::mondriaan_like(),
        &mut rng,
    );
    assert!(result.volume <= 96);
    assert!(load_imbalance(&result.partition) <= EPSILON + 1e-9);
    let stats = PatternStats::compute(&a);
    assert_eq!(stats.class(), MatrixClass::Symmetric);
    let cost = bsp_cost(&a, &result.partition);
    assert!(cost.total() <= result.volume);
}

#[test]
fn deterministic_end_to_end() {
    let config = PartitionerConfig::patoh_like();
    let a = gen::laplacian_2d_9pt(20, 20);
    for method in methods_under_test() {
        let r1 = method.bipartition(&a, EPSILON, &config, &mut StdRng::seed_from_u64(33));
        let r2 = method.bipartition(&a, EPSILON, &config, &mut StdRng::seed_from_u64(33));
        assert_eq!(r1.partition, r2.partition, "{method}");
    }
}

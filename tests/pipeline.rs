//! Cross-crate integration tests: the full pipeline from generated matrix
//! through models, multilevel partitioning, refinement and metrics,
//! exercised through the public facade exactly as a downstream user would.

use mediumgrain::core::{iterative_refinement, RefineOptions};
use mediumgrain::prelude::*;
use mediumgrain::sparse::gen;
use mg_test_support::fixtures::standard_workload as workload;
use mg_test_support::seeded_rng;
use rand::rngs::StdRng;
use rand::SeedableRng;

const EPSILON: f64 = 0.03;

fn methods_under_test() -> Vec<Method> {
    vec![
        Method::RowNet { refine: false },
        Method::ColumnNet { refine: false },
        Method::LocalBest { refine: false },
        Method::LocalBest { refine: true },
        Method::FineGrain { refine: false },
        Method::FineGrain { refine: true },
        Method::MediumGrain { refine: false },
        Method::MediumGrain { refine: true },
    ]
}

/// The worst volume any 1D bipartitioning can be charged: cutting every
/// matrix line of one orientation. A row partition communicates at most once
/// per nonempty column and vice versa, so the worse orientation bounds both
/// 1D baselines — and a 2D method that exceeded it would be strictly worse
/// than giving up on the second dimension entirely (the sanity bound
/// Knigge & Bisseling's exact-bipartitioning work checks against).
fn one_d_worst_case(a: &mediumgrain::sparse::Coo) -> u64 {
    let nonempty_rows = a.row_counts().iter().filter(|&&c| c > 0).count() as u64;
    let nonempty_cols = a.col_counts().iter().filter(|&&c| c > 0).count() as u64;
    nonempty_rows.max(nonempty_cols)
}

/// The full per-method contract on the seeded workload: valid partition,
/// honest volume, volume within the 1D worst case, imbalance within eqn (1).
///
/// The 1D bound is *provable* for the 1D methods (a row partition's volume
/// is at most the nonempty-column count and vice versa, so RN/CN can touch
/// the bound — RN on `arrow` reaches exactly 1.0× — but never exceed it).
/// For the 2D methods it is empirical headroom: measured over 8 seeds and
/// both engines they stay ≤ 0.25× the bound, so the assertion is robust to
/// RNG stream changes.
fn assert_method_contracts(config: &PartitionerConfig, seed: u64) {
    for (name, a) in workload() {
        let worst_1d = one_d_worst_case(&a);
        for method in methods_under_test() {
            let mut rng = seeded_rng(seed);
            let result = method.bipartition(&a, EPSILON, config, &mut rng);
            result.partition.check_against(&a).unwrap();
            assert_eq!(
                result.volume,
                communication_volume(&a, &result.partition),
                "{name}/{method}: reported volume is stale"
            );
            assert!(
                result.volume <= worst_1d,
                "{name}/{method}: volume {} exceeds the 1D worst case {worst_1d}",
                result.volume
            );
            assert!(
                load_imbalance(&result.partition) <= EPSILON + 1e-9,
                "{name}/{method}: imbalance {}",
                load_imbalance(&result.partition)
            );
        }
    }
}

#[test]
fn every_method_yields_valid_partitions_across_the_workload() {
    assert_method_contracts(&PartitionerConfig::mondriaan_like(), 1);
}

#[test]
fn both_engines_respect_volume_and_balance_bounds_for_every_method() {
    // Same contract, PaToH-like engine: the bounds are a property of the
    // method API, not of one engine preset.
    assert_method_contracts(&PartitionerConfig::patoh_like(), 2);
}

#[test]
fn medium_grain_beats_1d_on_2d_structured_matrices() {
    // The paper's headline claim, on the workloads its introduction
    // motivates (square matrices with 2D structure). Averaged over seeds
    // to be robust.
    let config = PartitionerConfig::mondriaan_like();
    let a = gen::arrow(300, 5);
    let mut mg_total = 0u64;
    let mut lb_total = 0u64;
    for seed in 0..5 {
        let mut rng = StdRng::seed_from_u64(seed);
        mg_total += Method::MediumGrain { refine: true }
            .bipartition(&a, EPSILON, &config, &mut rng)
            .volume;
        let mut rng = StdRng::seed_from_u64(seed);
        lb_total += Method::LocalBest { refine: false }
            .bipartition(&a, EPSILON, &config, &mut rng)
            .volume;
    }
    assert!(
        mg_total < lb_total,
        "medium-grain ({mg_total}) should beat localbest ({lb_total}) on the arrow matrix"
    );
}

#[test]
fn refinement_reduces_or_keeps_volume_for_all_methods() {
    let config = PartitionerConfig::mondriaan_like();
    for (name, a) in workload() {
        for refine in [
            Method::LocalBest { refine: false },
            Method::FineGrain { refine: false },
            Method::MediumGrain { refine: false },
        ] {
            let mut rng = StdRng::seed_from_u64(9);
            let base = refine.bipartition(&a, EPSILON, &config, &mut rng);
            let refined =
                iterative_refinement(&a, &base.partition, EPSILON, &RefineOptions::default());
            assert!(
                refined.volume <= base.volume,
                "{name}/{refine}: IR worsened {} -> {}",
                base.volume,
                refined.volume
            );
        }
    }
}

#[test]
fn spmv_simulation_agrees_with_metric_for_every_method() {
    use mediumgrain::sparse::spmv::{serial_spmv, simulate_spmv};
    let config = PartitionerConfig::mondriaan_like();
    let mut rng = StdRng::seed_from_u64(5);
    let a = gen::erdos_renyi(120, 90, 1500, &mut rng);
    for method in methods_under_test() {
        let result = method.bipartition(&a, EPSILON, &config, &mut rng);
        let report = simulate_spmv(&a, &result.partition, None);
        assert_eq!(report.total_words(), result.volume, "{method}");
        assert_eq!(report.output, serial_spmv(&a), "{method}");
    }
}

#[test]
fn facade_prelude_covers_the_quickstart_path() {
    // Mirrors the README quickstart so the docs cannot rot silently.
    let a = gen::laplacian_2d(32, 32);
    let mut rng = StdRng::seed_from_u64(42);
    let result = Method::MediumGrain { refine: true }.bipartition(
        &a,
        EPSILON,
        &PartitionerConfig::mondriaan_like(),
        &mut rng,
    );
    assert!(result.volume <= 96);
    assert!(load_imbalance(&result.partition) <= EPSILON + 1e-9);
    let stats = PatternStats::compute(&a);
    assert_eq!(stats.class(), MatrixClass::Symmetric);
    let cost = bsp_cost(&a, &result.partition);
    assert!(cost.total() <= result.volume);
}

#[test]
fn deterministic_end_to_end() {
    let config = PartitionerConfig::patoh_like();
    let a = gen::laplacian_2d_9pt(20, 20);
    for method in methods_under_test() {
        let r1 = method.bipartition(&a, EPSILON, &config, &mut StdRng::seed_from_u64(33));
        let r2 = method.bipartition(&a, EPSILON, &config, &mut StdRng::seed_from_u64(33));
        assert_eq!(r1.partition, r2.partition, "{method}");
    }
}

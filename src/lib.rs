//! # mediumgrain — facade crate
//!
//! A from-scratch Rust reproduction of
//! *"A medium-grain method for fast 2D bipartitioning of sparse matrices"*
//! (D. M. Pelt and R. H. Bisseling, IPDPS 2014), the algorithm that became
//! the default partitioner of Mondriaan 4.0.
//!
//! This crate re-exports the public API of the workspace so downstream users
//! need a single dependency:
//!
//! ```
//! use mediumgrain::prelude::*;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! // A 2D Laplacian, bipartitioned with the medium-grain method + iterative
//! // refinement under a 3% load-imbalance budget.
//! let a = mediumgrain::sparse::gen::laplacian_2d(32, 32);
//! let mut rng = StdRng::seed_from_u64(42);
//! let result = Method::MediumGrain { refine: true }
//!     .bipartition(&a, 0.03, &PartitionerConfig::mondriaan_like(), &mut rng);
//! assert!(result.volume <= 96); // far below the 1D worst case
//! assert!(load_imbalance(&result.partition) <= 0.03 + 1e-9);
//! ```
//!
//! The crates behind the facade:
//!
//! * [`sparse`] (`mg-sparse`) — matrices, I/O, generators, metrics, SpMV
//!   simulator,
//! * [`hypergraph`] (`mg-hypergraph`) — hypergraph models and cut metrics,
//! * [`partitioner`] (`mg-partitioner`) — the multilevel FM bipartitioner,
//! * [`core`] (`mg-core`) — the medium-grain method itself, baselines,
//!   iterative refinement, recursive bisection,
//! * [`collection`] (`mg-collection`) — the synthetic evaluation collection.

pub use mg_collection as collection;
pub use mg_core as core;
pub use mg_hypergraph as hypergraph;
pub use mg_partitioner as partitioner;
pub use mg_sparse as sparse;

/// One-stop imports for typical use.
///
/// Beyond bipartitioning, the prelude covers the p-way pipeline:
///
/// ```
/// use mediumgrain::prelude::*;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let a = mediumgrain::sparse::gen::laplacian_2d(16, 16);
/// let mut rng = StdRng::seed_from_u64(7);
/// let r = recursive_bisection(
///     &a,
///     4,
///     0.03,
///     Method::MediumGrain { refine: true },
///     &PartitionerConfig::mondriaan_like(),
///     &mut rng,
/// );
/// assert_eq!(r.partition.num_parts(), 4);
/// assert_eq!(r.volume, communication_volume(&a, &r.partition));
/// ```
pub mod prelude {
    pub use mg_core::{
        all_backends, iterative_refinement, parse_backend, recursive_bisection,
        recursive_bisection_backend, BipartitionResult, Method, MultiwayResult, PartitionBackend,
    };
    pub use mg_hypergraph::{Hypergraph, VertexBipartition};
    pub use mg_partitioner::PartitionerConfig;
    pub use mg_sparse::{
        bsp_cost, communication_volume, load_imbalance, Coo, MatrixClass, NonzeroPartition,
        PatternStats,
    };
}
